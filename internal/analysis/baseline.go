package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// The baseline (suppression) file lets `causalfl-vet` be adopted on a tree
// with pre-existing findings without blocking CI: known findings are
// committed to the baseline and only *new* findings fail the build. Entries
// are line-insensitive (pass + file + message) so unrelated edits do not
// invalidate them, and duplicate entries suppress one occurrence each.

// BaselineEntry identifies one suppressed finding.
type BaselineEntry struct {
	Pass    string `json:"pass"`
	File    string `json:"file"`
	Message string `json:"message"`
}

// key mirrors Finding.Key.
func (e BaselineEntry) key() string {
	return e.Pass + "\x00" + e.File + "\x00" + e.Message
}

// Baseline is the committed set of accepted findings.
type Baseline struct {
	Findings []BaselineEntry `json:"findings"`
}

// LoadBaseline reads a baseline file. A missing file is an empty baseline,
// so a clean tree needs no file at all.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: read baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("analysis: parse baseline %s: %w", path, err)
	}
	return &b, nil
}

// BaselineFromFindings builds the baseline that accepts exactly the given
// findings, sorted for a stable committed file.
func BaselineFromFindings(fs []Finding) *Baseline {
	entries := make([]BaselineEntry, 0, len(fs))
	for _, f := range fs {
		entries = append(entries, BaselineEntry{Pass: f.Pass, File: f.File, Message: f.Message})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].File != entries[j].File {
			return entries[i].File < entries[j].File
		}
		if entries[i].Pass != entries[j].Pass {
			return entries[i].Pass < entries[j].Pass
		}
		return entries[i].Message < entries[j].Message
	})
	return &Baseline{Findings: entries}
}

// Write saves the baseline as indented JSON.
func (b *Baseline) Write(path string) error {
	entries := b.Findings
	if entries == nil {
		entries = []BaselineEntry{}
	}
	data, err := json.MarshalIndent(Baseline{Findings: entries}, "", "  ")
	if err != nil {
		return fmt.Errorf("analysis: encode baseline: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("analysis: write baseline: %w", err)
	}
	return nil
}

// Filter splits findings into fresh (not baselined) and suppressed, and
// reports stale baseline entries that matched nothing. Each baseline entry
// suppresses at most one finding, so a regression that duplicates an already
// baselined finding still fails the build.
func (b *Baseline) Filter(fs []Finding) (fresh []Finding, suppressed int, stale []BaselineEntry) {
	budget := make(map[string]int, len(b.Findings))
	for _, e := range b.Findings {
		budget[e.key()]++
	}
	for _, f := range fs {
		if budget[f.Key()] > 0 {
			budget[f.Key()]--
			suppressed++
			continue
		}
		fresh = append(fresh, f)
	}
	for _, e := range b.Findings {
		if budget[e.key()] > 0 {
			budget[e.key()]--
			stale = append(stale, e)
		}
	}
	return fresh, suppressed, stale
}
