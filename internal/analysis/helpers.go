package analysis

import (
	"go/ast"
	"go/types"
	"path"
	"strconv"
	"strings"
)

// pkgSelector resolves a selector expression whose X is a package name,
// returning the imported package's path and the selected identifier. It
// prefers type information and falls back to the file's import table when
// the type-check was incomplete.
func pkgSelector(pkg *Package, file *ast.File, sel *ast.SelectorExpr) (pkgPath, name string, ok bool) {
	ident, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	if pkg.Info != nil {
		if obj, found := pkg.Info.Uses[ident]; found {
			pkgName, isPkg := obj.(*types.PkgName)
			if !isPkg {
				return "", "", false
			}
			return pkgName.Imported().Path(), sel.Sel.Name, true
		}
	}
	// Syntactic fallback: match the identifier against import local names.
	for _, imp := range file.Imports {
		target, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		local := path.Base(target)
		if imp.Name != nil {
			local = imp.Name.Name
		}
		if local == ident.Name {
			return target, sel.Sel.Name, true
		}
	}
	return "", "", false
}

// isTestSupportFile reports files whose findings the code passes skip:
// nothing here yet beyond the _test.go exclusion the loader already applies,
// but files named *_fixtures.go could be added.
func isTestSupportFile(name string) bool {
	return strings.HasSuffix(name, "_test.go")
}

// enclosingFuncs returns, for every node visited by fn, the innermost
// function declaration name ("" at package level). It drives the Must*
// exemption of the paniclib pass.
type funcStack struct {
	names []string
}

func (s *funcStack) push(name string) { s.names = append(s.names, name) }
func (s *funcStack) pop()             { s.names = s.names[:len(s.names)-1] }
func (s *funcStack) current() string {
	if len(s.names) == 0 {
		return ""
	}
	return s.names[len(s.names)-1]
}

// walkWithFuncs traverses file, keeping track of the enclosing named
// function declaration (function literals inherit the declaration's name).
func walkWithFuncs(file *ast.File, visit func(n ast.Node, enclosing string)) {
	var stack funcStack
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if decl, isFunc := n.(*ast.FuncDecl); isFunc {
			stack.push(decl.Name.Name)
			if decl.Body != nil {
				ast.Inspect(decl.Body, walk)
			}
			stack.pop()
			return false
		}
		if n != nil {
			visit(n, stack.current())
		}
		return true
	}
	ast.Inspect(file, walk)
}
