package analysis

import (
	"fmt"
	"strings"
	"testing"
)

// findAnalyzer resolves a code pass by name.
func findAnalyzer(t *testing.T, name string) *Analyzer {
	t.Helper()
	for _, a := range CodeAnalyzers() {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("no code analyzer named %q", name)
	return nil
}

// wantFinding is one golden finding: position plus a fragment the message
// must contain.
type wantFinding struct {
	file     string
	line     int
	fragment string
}

// runFixture type-checks an in-memory package and runs one pass over it.
func runFixture(t *testing.T, pass, importPath string, files map[string]string) []Finding {
	t.Helper()
	mod, pkg, err := CheckSource(importPath, files)
	if err != nil {
		t.Fatalf("CheckSource: %v", err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Fatalf("fixture does not type-check: %v", terr)
	}
	return RunPassOnPackage(findAnalyzer(t, pass), mod, pkg)
}

func checkFindings(t *testing.T, got []Finding, want []wantFinding) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d finding(s), want %d:\n%s", len(got), len(want), renderFindings(got))
	}
	for i, w := range want {
		f := got[i]
		if f.File != w.file || f.Line != w.line || !strings.Contains(f.Message, w.fragment) {
			t.Errorf("finding %d = %s, want %s:%d containing %q", i, f, w.file, w.line, w.fragment)
		}
	}
}

func renderFindings(fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	return b.String()
}

func TestCodePasses(t *testing.T) {
	cases := []struct {
		name       string
		pass       string
		importPath string
		files      map[string]string
		want       []wantFinding
	}{
		{
			name:       "globalrand flags package-level draws",
			pass:       "globalrand",
			importPath: "fixturemod/internal/sim",
			files: map[string]string{"a.go": `package sim

import "math/rand"

func draw() (int, *rand.Rand) {
	seeded := rand.New(rand.NewSource(1)) // constructors are fine
	return rand.Intn(10), seeded          // global draw is not
}
`},
			want: []wantFinding{{file: "a.go", line: 7, fragment: "global math/rand source"}},
		},
		{
			name:       "globalrand flags aliased import",
			pass:       "globalrand",
			importPath: "fixturemod/pkg",
			files: map[string]string{"a.go": `package pkg

import mrand "math/rand"

func draw() float64 { return mrand.Float64() }
`},
			want: []wantFinding{{file: "a.go", line: 5, fragment: "rand.Float64"}},
		},
		{
			name:       "walltime flags clock reads in restricted packages only",
			pass:       "walltime",
			importPath: "fixturemod/internal/sim",
			files: map[string]string{"a.go": `package sim

import "time"

const tick = 50 * time.Millisecond // duration arithmetic is fine

func now() time.Time { return time.Now() }
`},
			want: []wantFinding{{file: "a.go", line: 7, fragment: "time.Now reads the wall clock"}},
		},
		{
			name:       "walltime ignores unrestricted packages",
			pass:       "walltime",
			importPath: "fixturemod/cmd/tool",
			files: map[string]string{"a.go": `package tool

import "time"

func now() time.Time { return time.Now() }
`},
			want: nil,
		},
		{
			name:       "walltime honors an allow directive with a reason",
			pass:       "walltime",
			importPath: "fixturemod/internal/clock",
			files: map[string]string{"a.go": `package clock

import "time"

//vet:allow walltime -- the one blessed wall-clock source
func now() time.Time { return time.Now() }
`},
			want: nil,
		},
		{
			name:       "walltime ignores a reasonless directive",
			pass:       "walltime",
			importPath: "fixturemod/internal/clock",
			files: map[string]string{"a.go": `package clock

import "time"

//vet:allow walltime
func now() time.Time { return time.Now() }
`},
			want: []wantFinding{{file: "a.go", line: 6, fragment: "time.Now"}},
		},
		{
			name:       "floateq flags equality but keeps the exemptions",
			pass:       "floateq",
			importPath: "fixturemod/internal/stats",
			files: map[string]string{"a.go": `package stats

func compare(a, b float64, n, m int) []bool {
	return []bool{
		a == b,  // flagged
		a != b,  // flagged
		a == 0,  // zero sentinel: exempt
		0.0 != b, // zero sentinel: exempt
		a != a,  // NaN idiom: exempt
		n == m,  // ints: not a float comparison
	}
}
`},
			want: []wantFinding{
				{file: "a.go", line: 5, fragment: "floating-point == comparison"},
				{file: "a.go", line: 6, fragment: "floating-point != comparison"},
			},
		},
		{
			name:       "paniclib flags library panics but not Must helpers",
			pass:       "paniclib",
			importPath: "fixturemod/internal/sim",
			files: map[string]string{"a.go": `package sim

import "errors"

func Build(ok bool) error {
	if !ok {
		panic("bad topology") // flagged
	}
	return nil
}

func MustBuild() {
	if err := Build(false); err != nil {
		panic(err) // Must* convention: exempt
	}
}

var errSentinel = errors.New("x")
`},
			want: []wantFinding{{file: "a.go", line: 7, fragment: "panic in library package"}},
		},
		{
			name:       "paniclib ignores package main",
			pass:       "paniclib",
			importPath: "fixturemod/cmd/tool",
			files: map[string]string{"a.go": `package main

func main() { panic("commands may crash") }
`},
			want: nil,
		},
		{
			name:       "errcheck-io flags discarded writes and deferred Close of created files",
			pass:       "errcheck-io",
			importPath: "fixturemod/internal/metrics",
			files: map[string]string{"a.go": `package metrics

import (
	"os"
	"strings"
)

func save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()          // flagged: write errors vanish in the close
	f.WriteString("payload") // flagged: discarded write error
	var b strings.Builder
	b.WriteString("ok") // in-memory: exempt
	_ = f.Sync()        // explicit discard: exempt
	return nil
}

func read(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close() // read-only file: exempt
	return nil
}
`},
			want: []wantFinding{
				{file: "a.go", line: 13, fragment: "deferred Close discards the write error"},
				{file: "a.go", line: 14, fragment: "error returned by WriteString is discarded"},
			},
		},
		{
			name:       "magic-alpha flags literals flowing into significance slots",
			pass:       "magic-alpha",
			importPath: "fixturemod/internal/core",
			files: map[string]string{"a.go": `package core

func test(alpha float64) bool { return alpha > 0 }

func runAll(ps []float64) (int, bool) {
	alpha := 0.05       // flagged: assignment to alpha
	lossRate := 0.05    // a rate, not a significance level: exempt
	hits := 0
	for _, p := range ps {
		if p < 0.01 { // flagged: comparison with p
			hits++
		}
	}
	_ = lossRate
	return hits, test(0.05) && test(alpha) // flagged: parameter alpha
}
`},
			want: []wantFinding{
				{file: "a.go", line: 6, fragment: "assignment to alpha"},
				{file: "a.go", line: 10, fragment: "comparison with p"},
				{file: "a.go", line: 15, fragment: "parameter alpha"},
			},
		},
		{
			name:       "magic-alpha allows constants in internal/stats",
			pass:       "magic-alpha",
			importPath: "fixturemod/internal/stats",
			files: map[string]string{"a.go": `package stats

const (
	DefaultAlpha = 0.05
	StrictAlpha  = 0.01
)
`},
			want: nil,
		},
		{
			name:       "goroutine-leak flags literal and transitive spin loops",
			pass:       "goroutine-leak",
			importPath: "fixturemod/internal/stream",
			files: map[string]string{"a.go": `package stream

var n int

func spin() {
	for { // inescapable: no return, break, select or channel op
		n++
	}
}

func Start(done chan struct{}) {
	go func() { // flagged: literal spin loop
		for {
			n++
		}
	}()
	go spin() // flagged: reaches spin's loop through the call graph
	go func() { // exempt: selects on the exit channel
		for {
			select {
			case <-done:
				return
			default:
			}
		}
	}()
	go func() { n++ }() // exempt: terminates
}
`},
			want: []wantFinding{
				{file: "a.go", line: 12, fragment: "unbounded loop with no termination path"},
				{file: "a.go", line: 17, fragment: "goroutine calls stream.spin"},
			},
		},
		{
			name:       "unbounded-spawn flags loop spawns without a bound",
			pass:       "unbounded-spawn",
			importPath: "fixturemod/internal/stream",
			files: map[string]string{"a.go": `package stream

func work(i int) {}

func FanOut(jobs []int) {
	for _, j := range jobs {
		go work(j) // flagged: no bound
	}
	sem := make(chan struct{}, 4)
	for _, j := range jobs {
		sem <- struct{}{} // semaphore acquire
		j := j
		go func() { // exempt: bounded by sem
			defer func() { <-sem }()
			work(j)
		}()
	}
	go work(0) // exempt: not in a loop
}
`},
			want: []wantFinding{
				{file: "a.go", line: 7, fragment: "spawns without a bound"},
			},
		},
		{
			name:       "unbounded-spawn exempts internal/parallel",
			pass:       "unbounded-spawn",
			importPath: "fixturemod/internal/parallel",
			files: map[string]string{"a.go": `package parallel

func Spawn(n int) {
	for i := 0; i < n; i++ {
		go func() {}()
	}
}
`},
			want: nil,
		},
		{
			name:       "locked-blocking flags blocking ops inside critical sections",
			pass:       "locked-blocking",
			importPath: "fixturemod/internal/serve",
			files: map[string]string{"a.go": `package serve

import (
	"sync"
	"time"
)

type box struct {
	mu sync.Mutex
	ch chan int
}

func (b *box) send() {
	b.mu.Lock()
	b.ch <- 1 // flagged: send while b.mu held
	b.mu.Unlock()
	b.ch <- 2 // exempt: lock released
}

func (b *box) deferred() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	time.Sleep(time.Millisecond) // flagged: defer holds to function end
	return <-b.ch                // flagged: receive while held
}

func (b *box) shed(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	select { // exempt: default clause makes it non-blocking
	case b.ch <- v:
	default:
	}
}

func (b *box) wait() {
	b.mu.Lock()
	defer b.mu.Unlock()
	select { // flagged: no default
	case <-b.ch:
	}
}
`},
			want: []wantFinding{
				{file: "a.go", line: 15, fragment: "channel send while b.mu is held"},
				{file: "a.go", line: 23, fragment: "time.Sleep while b.mu is held"},
				{file: "a.go", line: 24, fragment: "channel receive while b.mu is held"},
				{file: "a.go", line: 39, fragment: "select without a default clause while b.mu is held"},
			},
		},
		{
			name:       "walltime-flow stays quiet on a direct read (textual pass's territory)",
			pass:       "walltime-flow",
			importPath: "fixturemod/internal/sim",
			files: map[string]string{"a.go": `package sim

import "time"

func now() time.Time { return time.Now() }
`},
			want: nil,
		},
		{
			name:       "magic-alpha flags constants outside internal/stats",
			pass:       "magic-alpha",
			importPath: "fixturemod/internal/core",
			files: map[string]string{"a.go": `package core

const localAlpha = 0.05
`},
			want: []wantFinding{{file: "a.go", line: 3, fragment: "const localAlpha"}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checkFindings(t, runFixture(t, tc.pass, tc.importPath, tc.files), tc.want)
		})
	}
}

func TestPassNamesAreUniqueAndDocumented(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range CodeAnalyzers() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("code analyzer %+v is incomplete", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate pass name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, d := range DomainAnalyzers() {
		if d.Name == "" || d.Doc == "" || d.Run == nil {
			t.Errorf("domain analyzer %+v is incomplete", d)
		}
		if seen[d.Name] {
			t.Errorf("duplicate pass name %q", d.Name)
		}
		seen[d.Name] = true
	}
	if len(PassNames()) != len(seen) {
		t.Errorf("PassNames lists %d entries, want %d", len(PassNames()), len(seen))
	}
}
