package analysis

// The module call graph is the engine behind the interprocedural passes:
// the per-package textual passes (walltime, globalrand) see one package at a
// time, so a deterministic package can launder a wall-clock read or a global
// rand draw through a helper in an unrestricted package and scan clean. The
// graph closes that hole by resolving, module-wide:
//
//   - static calls (`stats.KS(...)`, `helper(...)`),
//   - method calls through named (non-interface) types (`t.run()`,
//     promoted embedded methods included),
//   - calls through function values assigned to identifiers
//     (`f := pkg.Helper; f()`), flow-insensitively.
//
// Interface method calls stay unresolved on purpose: dynamic dispatch is the
// project's sanctioned injection seam (clock.Clock, core.Localizer), so an
// injected dependency never taints its caller. Function values passed as
// arguments, stored in struct fields or map values are also unresolved — the
// approximation is documented in docs/STATIC_ANALYSIS.md and errs toward
// missing edges, never inventing them.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
	"sync"
)

// Node is one function or method declared in the module.
type Node struct {
	// ID is the type-checker's full name (e.g. "causalfl/internal/stats.KS"
	// or "(*causalfl/internal/serve.tenant).run"), uniquified for multiple
	// init functions.
	ID string
	// Pkg is the declaring package; Decl the declaration; File its file.
	Pkg  *Package
	Decl *ast.FuncDecl
	File *ast.File

	obj *types.Func
}

// Pos is the declaration position.
func (n *Node) Pos() token.Pos { return n.Decl.Pos() }

// Short renders the display name used in findings: "stats.KS",
// "serve.(*tenant).run".
func (n *Node) Short() string {
	name := n.Decl.Name.Name
	if n.Decl.Recv == nil || len(n.Decl.Recv.List) == 0 {
		return n.Pkg.Name + "." + name
	}
	recv := n.Decl.Recv.List[0].Type
	return n.Pkg.Name + ".(" + types.ExprString(recv) + ")." + name
}

// Edge is one resolved call: Caller invokes Callee at Site.
type Edge struct {
	Caller *Node
	Callee *Node
	// Site is the call position inside Caller (function literals nested in
	// Caller attribute their calls to Caller).
	Site token.Pos
}

// CallGraph is the module-wide graph of resolved calls with reachability
// queries. Build it with BuildCallGraph or the cached Module.CallGraph.
type CallGraph struct {
	mod    *Module
	nodes  map[string]*Node
	byObj  map[*types.Func]*Node
	byDecl map[*ast.FuncDecl]*Node
	out    map[*Node][]Edge
	in     map[*Node][]Edge
	// bindings maps function-value variables to the declared functions
	// assigned to them anywhere in the module.
	bindings map[types.Object][]*types.Func

	mu    sync.Mutex
	memos map[string]any
}

// CallGraph builds the module's call graph once and caches it; every
// interprocedural pass shares the same instance.
func (m *Module) CallGraph() *CallGraph {
	m.cgOnce.Do(func() { m.cg = BuildCallGraph(m) })
	return m.cg
}

// BuildCallGraph constructs the call graph for a loaded module. Packages
// whose type-check degraded contribute the edges that still resolve; nothing
// panics on partial information.
func BuildCallGraph(mod *Module) *CallGraph {
	g := &CallGraph{
		mod:    mod,
		nodes:  map[string]*Node{},
		byObj:  map[*types.Func]*Node{},
		byDecl: map[*ast.FuncDecl]*Node{},
		out:    map[*Node][]Edge{},
		in:     map[*Node][]Edge{},
		memos:  map[string]any{},
	}

	// Index every declared function and method.
	for _, pkg := range mod.Packages {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				var obj *types.Func
				if pkg.Info != nil {
					obj, _ = pkg.Info.Defs[fd.Name].(*types.Func)
				}
				id := nodeID(pkg, fd, obj)
				for g.nodes[id] != nil { // multiple init funcs share a name
					id += "'"
				}
				n := &Node{ID: id, Pkg: pkg, Decl: fd, File: file, obj: obj}
				g.nodes[id] = n
				g.byDecl[fd] = n
				if obj != nil {
					g.byObj[obj] = n
				}
			}
		}
	}

	g.bindings = collectBindings(mod)

	// Resolve call edges. Function literals attribute their calls to the
	// enclosing declaration: a closure defined inside f is f's code for
	// determinism purposes whether it runs inline or on a goroutine.
	for _, pkg := range mod.Packages {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				caller := g.byDecl[fd]
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					for _, target := range resolveCallTargets(pkg, call.Fun, g.bindings) {
						if callee := g.byObj[target]; callee != nil {
							g.addEdge(caller, callee, call.Lparen)
						}
					}
					return true
				})
			}
		}
	}

	for _, edges := range g.out {
		sortEdges(edges)
	}
	for _, edges := range g.in {
		sortEdges(edges)
	}
	return g
}

// nodeID derives a stable identifier for a declaration.
func nodeID(pkg *Package, fd *ast.FuncDecl, obj *types.Func) string {
	if obj != nil {
		return obj.FullName()
	}
	// Type-check degraded: fall back to a syntactic name.
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		return pkg.ImportPath + ".(" + types.ExprString(fd.Recv.List[0].Type) + ")." + fd.Name.Name
	}
	return pkg.ImportPath + "." + fd.Name.Name
}

// sortEdges orders edges by callee ID then site, for deterministic queries
// and DOT output.
func sortEdges(edges []Edge) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Callee.ID != edges[j].Callee.ID {
			return edges[i].Callee.ID < edges[j].Callee.ID
		}
		if edges[i].Caller.ID != edges[j].Caller.ID {
			return edges[i].Caller.ID < edges[j].Caller.ID
		}
		return edges[i].Site < edges[j].Site
	})
}

func (g *CallGraph) addEdge(caller, callee *Node, site token.Pos) {
	for _, e := range g.out[caller] {
		if e.Callee == callee && e.Site == site {
			return
		}
	}
	e := Edge{Caller: caller, Callee: callee, Site: site}
	g.out[caller] = append(g.out[caller], e)
	g.in[callee] = append(g.in[callee], e)
}

// collectBindings records, flow-insensitively, every declared function
// assigned to an identifier: `f := pkg.Helper`, `var f = method`, plain
// reassignment. Calls through such identifiers resolve to every binding.
func collectBindings(mod *Module) map[types.Object][]*types.Func {
	b := map[types.Object][]*types.Func{}
	for _, pkg := range mod.Packages {
		if pkg.Info == nil {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.AssignStmt:
					if len(st.Lhs) != len(st.Rhs) {
						return true
					}
					for i, lhs := range st.Lhs {
						bindFuncValue(pkg, b, lhs, st.Rhs[i])
					}
				case *ast.ValueSpec:
					if len(st.Names) != len(st.Values) {
						return true
					}
					for i, name := range st.Names {
						bindFuncValue(pkg, b, name, st.Values[i])
					}
				}
				return true
			})
		}
	}
	return b
}

func bindFuncValue(pkg *Package, b map[types.Object][]*types.Func, lhs, rhs ast.Expr) {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return
	}
	obj := types.Object(nil)
	if def := pkg.Info.Defs[id]; def != nil {
		obj = def
	} else if use := pkg.Info.Uses[id]; use != nil {
		obj = use
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return
	}
	if fn := staticFunc(pkg, rhs); fn != nil {
		b[obj] = append(b[obj], fn)
	}
}

// staticFunc resolves an expression to the declared function it names, if
// any: a bare identifier, a qualified identifier, or a method value.
func staticFunc(pkg *Package, e ast.Expr) *types.Func {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pkg.Info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}

// resolveCallTargets returns the declared functions a call's Fun expression
// can invoke: the static function, the concrete method, or every function
// bound to an identifier-typed function value. Interface method calls and
// unresolvable values return nil.
func resolveCallTargets(pkg *Package, fun ast.Expr, bindings map[types.Object][]*types.Func) []*types.Func {
	if pkg.Info == nil {
		return nil
	}
	switch e := ast.Unparen(fun).(type) {
	case *ast.IndexExpr: // generic instantiation f[T](...)
		return resolveCallTargets(pkg, e.X, bindings)
	case *ast.IndexListExpr:
		return resolveCallTargets(pkg, e.X, bindings)
	case *ast.Ident:
		switch obj := pkg.Info.Uses[e].(type) {
		case *types.Func:
			return []*types.Func{obj}
		case *types.Var:
			return bindings[obj]
		}
	case *ast.SelectorExpr:
		switch obj := pkg.Info.Uses[e.Sel].(type) {
		case *types.Func:
			if sel, ok := pkg.Info.Selections[e]; ok && sel.Recv() != nil && types.IsInterface(sel.Recv()) {
				return nil // dynamic dispatch: the sanctioned injection seam
			}
			return []*types.Func{obj}
		case *types.Var: // package-level function variable
			return bindings[obj]
		}
	}
	return nil
}

// NodeByID looks a node up by its ID.
func (g *CallGraph) NodeByID(id string) *Node { return g.nodes[id] }

// NodeFor returns the node of a declaration, or nil for declarations outside
// the module.
func (g *CallGraph) NodeFor(decl *ast.FuncDecl) *Node { return g.byDecl[decl] }

// nodeForObj maps a type-checker function object to its node.
func (g *CallGraph) nodeForObj(obj *types.Func) *Node { return g.byObj[obj] }

// Nodes returns every node, sorted by ID.
func (g *CallGraph) Nodes() []*Node {
	out := make([]*Node, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Callees returns n's outgoing edges (sorted by callee ID, then site).
func (g *CallGraph) Callees(n *Node) []Edge { return g.out[n] }

// Callers returns n's incoming edges.
func (g *CallGraph) Callers(n *Node) []Edge { return g.in[n] }

// Reaches reports whether from can reach to through call edges; a node
// reaches itself.
func (g *CallGraph) Reaches(from, to *Node) bool {
	if from == nil || to == nil {
		return false
	}
	if from == to {
		return true
	}
	seen := map[*Node]bool{from: true}
	queue := []*Node{from}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range g.out[n] {
			if e.Callee == to {
				return true
			}
			if !seen[e.Callee] {
				seen[e.Callee] = true
				queue = append(queue, e.Callee)
			}
		}
	}
	return false
}

// Reachers returns every node that can reach a target through call edges,
// targets included — the reverse-reachability closure the taint passes use.
func (g *CallGraph) Reachers(targets map[*Node]bool) map[*Node]bool {
	seen := make(map[*Node]bool, len(targets))
	var queue []*Node
	for n, ok := range targets {
		if ok {
			seen[n] = true
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range g.in[n] {
			if !seen[e.Caller] {
				seen[e.Caller] = true
				queue = append(queue, e.Caller)
			}
		}
	}
	return seen
}

// Path returns a shortest call chain from `from` to any target (inclusive of
// both endpoints), or nil when none exists. Ties break toward lower callee
// IDs, so the chain is deterministic.
func (g *CallGraph) Path(from *Node, targets map[*Node]bool) []*Node {
	if from == nil {
		return nil
	}
	if targets[from] {
		return []*Node{from}
	}
	prev := map[*Node]*Node{from: nil}
	queue := []*Node{from}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range g.out[n] {
			if _, ok := prev[e.Callee]; ok {
				continue
			}
			prev[e.Callee] = n
			if targets[e.Callee] {
				var path []*Node
				for at := e.Callee; at != nil; at = prev[at] {
					path = append([]*Node{at}, path...)
				}
				return path
			}
			queue = append(queue, e.Callee)
		}
	}
	return nil
}

// memoized computes a per-graph derived value once per key and caches it;
// safe for concurrent pass runs.
func (g *CallGraph) memoized(key string, compute func() any) any {
	g.mu.Lock()
	defer g.mu.Unlock()
	if v, ok := g.memos[key]; ok {
		return v
	}
	v := compute()
	g.memos[key] = v
	return v
}

// WriteDOT renders the graph in Graphviz DOT form (`causalfl-vet -graph`).
// Nodes are labeled with their short names and grouped by package via the
// label prefix; duplicate call sites collapse to one edge.
func (g *CallGraph) WriteDOT(w io.Writer) error {
	var b strings.Builder
	b.WriteString("digraph callgraph {\n")
	b.WriteString("  rankdir=LR;\n  node [shape=box, fontsize=10];\n")
	nodes := g.Nodes()
	for _, n := range nodes {
		fmt.Fprintf(&b, "  %q [label=%q];\n", n.ID, n.Pkg.RelDir+"\n"+n.Short())
	}
	for _, n := range nodes {
		seen := map[*Node]bool{}
		for _, e := range g.out[n] {
			if seen[e.Callee] {
				continue
			}
			seen[e.Callee] = true
			fmt.Fprintf(&b, "  %q -> %q;\n", n.ID, e.Callee.ID)
		}
	}
	b.WriteString("}\n")
	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("analysis: write dot: %w", err)
	}
	return nil
}
