package analysis

import (
	"strings"
	"testing"
)

// checkModuleFixture loads a multi-package in-memory module and fails the
// test on any type error — interprocedural fixtures must type-check fully.
func checkModuleFixture(t *testing.T, pkgs map[string]map[string]string) *Module {
	t.Helper()
	mod, err := CheckModuleSource("fixturemod", pkgs)
	if err != nil {
		t.Fatalf("CheckModuleSource: %v", err)
	}
	for _, pkg := range mod.Packages {
		for _, terr := range pkg.TypeErrors {
			t.Fatalf("fixture package %s does not type-check: %v", pkg.ImportPath, terr)
		}
	}
	return mod
}

// pkgByDir finds a fixture package by its module-relative dir.
func pkgByDir(t *testing.T, mod *Module, dir string) *Package {
	t.Helper()
	for _, pkg := range mod.Packages {
		if pkg.RelDir == dir {
			return pkg
		}
	}
	t.Fatalf("no fixture package in dir %q", dir)
	return nil
}

// nodeByShort finds a call-graph node by its display name ("util.Stamp").
func nodeByShort(t *testing.T, g *CallGraph, short string) *Node {
	t.Helper()
	for _, n := range g.Nodes() {
		if n.Short() == short {
			return n
		}
	}
	t.Fatalf("no call-graph node named %q; have %s", short, nodeNames(g))
	return nil
}

func nodeNames(g *CallGraph) string {
	var names []string
	for _, n := range g.Nodes() {
		names = append(names, n.Short())
	}
	return strings.Join(names, ", ")
}

func calleeShorts(g *CallGraph, n *Node) []string {
	var out []string
	for _, e := range g.Callees(n) {
		out = append(out, e.Callee.Short())
	}
	return out
}

// TestCallGraphEdgeKinds pins the three resolved edge kinds — static calls,
// method calls through named types, and calls through function values bound
// to identifiers — and the deliberate non-edge: interface dispatch.
func TestCallGraphEdgeKinds(t *testing.T) {
	mod := checkModuleFixture(t, map[string]map[string]string{
		"util": {"util.go": `package util

type Counter struct{ n int }

func (c *Counter) Inc() { c.n++ }

func helper() {}

func Add(c *Counter) {
	c.Inc()     // method call through a named type
	f := helper // function value bound to an identifier
	f()
}

type Ticker interface{ Tick() }

type realTicker struct{}

func (realTicker) Tick() {}

func Drive(tk Ticker) { tk.Tick() } // interface dispatch: no edge
`},
		"internal/sim": {"sim.go": `package sim

import "fixturemod/util"

func Step(c *util.Counter) { util.Add(c) } // static cross-package call
`},
	})
	g := mod.CallGraph()

	add := nodeByShort(t, g, "util.Add")
	got := calleeShorts(g, add)
	want := []string{"util.(*Counter).Inc", "util.helper"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("util.Add callees = %v, want %v", got, want)
	}

	step := nodeByShort(t, g, "sim.Step")
	if got := calleeShorts(g, step); len(got) != 1 || got[0] != "util.Add" {
		t.Errorf("sim.Step callees = %v, want [util.Add]", got)
	}

	drive := nodeByShort(t, g, "util.Drive")
	if got := calleeShorts(g, drive); len(got) != 0 {
		t.Errorf("interface call resolved to %v; dynamic dispatch must stay unresolved", got)
	}

	if callers := g.Callers(nodeByShort(t, g, "util.helper")); len(callers) != 1 || callers[0].Caller != add {
		t.Errorf("util.helper callers = %v, want [util.Add]", callers)
	}
}

// TestCallGraphReachability covers Reaches, Reachers and Path over a
// three-hop cross-package chain.
func TestCallGraphReachability(t *testing.T) {
	mod := checkModuleFixture(t, map[string]map[string]string{
		"util": {"util.go": `package util

func leaf() {}

func mid() { leaf() }

func Top() { mid() }

func Other() {}
`},
	})
	g := mod.CallGraph()
	top := nodeByShort(t, g, "util.Top")
	mid := nodeByShort(t, g, "util.mid")
	leaf := nodeByShort(t, g, "util.leaf")
	other := nodeByShort(t, g, "util.Other")

	if !g.Reaches(top, leaf) {
		t.Error("Top must reach leaf through mid")
	}
	if g.Reaches(leaf, top) {
		t.Error("reachability must respect edge direction")
	}
	if g.Reaches(other, leaf) {
		t.Error("Other has no path to leaf")
	}

	reachers := g.Reachers(map[*Node]bool{leaf: true})
	for _, n := range []*Node{top, mid, leaf} {
		if !reachers[n] {
			t.Errorf("Reachers(leaf) missing %s", n.Short())
		}
	}
	if reachers[other] {
		t.Error("Reachers(leaf) must not include Other")
	}

	path := g.Path(top, map[*Node]bool{leaf: true})
	var shorts []string
	for _, n := range path {
		shorts = append(shorts, n.Short())
	}
	if strings.Join(shorts, " → ") != "util.Top → util.mid → util.leaf" {
		t.Errorf("Path = %v", shorts)
	}
}

// launderingFixture is the seeded regression for the flow passes: a
// deterministic package reads the wall clock through two hops of helpers in
// an unrestricted package, so the textual walltime pass scans clean.
func launderingFixture() map[string]map[string]string {
	return map[string]map[string]string{
		"util": {"util.go": `package util

import "time"

func now() time.Time { return time.Now() }

// Stamp looks innocent from internal/sim's point of view.
func Stamp() int64 { return now().Unix() }
`},
		"internal/sim": {"sim.go": `package sim

import "fixturemod/util"

func Step() int64 { return util.Stamp() }
`},
	}
}

// TestWalltimeFlowCatchesLaundering proves the division of labor: the
// textual walltime pass misses the cross-package chain entirely, and
// walltime-flow reports the boundary call with the full chain to the sink.
func TestWalltimeFlowCatchesLaundering(t *testing.T) {
	mod := checkModuleFixture(t, launderingFixture())
	sim := pkgByDir(t, mod, "internal/sim")

	if got := RunPassOnPackage(findAnalyzer(t, "walltime"), mod, sim); len(got) != 0 {
		t.Fatalf("textual walltime unexpectedly found:\n%s", renderFindings(got))
	}

	got := RunPassOnPackage(findAnalyzer(t, "walltime-flow"), mod, sim)
	checkFindings(t, got, []wantFinding{
		{file: "internal/sim/sim.go", line: 5, fragment: "util.Stamp → util.now → time.Now"},
	})
	if !strings.Contains(got[0].Message, "clock.Clock") {
		t.Errorf("finding does not name the remedy: %s", got[0].Message)
	}
}

// TestRandFlowCatchesLaundering is the same regression for the global-rand
// domain, one hop deep.
func TestRandFlowCatchesLaundering(t *testing.T) {
	mod := checkModuleFixture(t, map[string]map[string]string{
		"util": {"util.go": `package util

import "math/rand"

func Jitter() int { return rand.Intn(10) }

func Seeded() *rand.Rand { return rand.New(rand.NewSource(1)) } // constructor: not a sink
`},
		"internal/core": {"core.go": `package core

import "fixturemod/util"

func Perturb() int { return util.Jitter() }

func Source() { _ = util.Seeded() }
`},
	})
	core := pkgByDir(t, mod, "internal/core")

	if got := RunPassOnPackage(findAnalyzer(t, "globalrand"), mod, core); len(got) != 0 {
		t.Fatalf("textual globalrand unexpectedly found:\n%s", renderFindings(got))
	}
	checkFindings(t, RunPassOnPackage(findAnalyzer(t, "rand-flow"), mod, core), []wantFinding{
		{file: "internal/core/core.go", line: 5, fragment: "util.Jitter → rand.Intn"},
	})
}

// TestFlowAllowDirectiveAtSink proves a reasoned directive at the sink line
// blesses the whole chain — the clock.Wall seam pattern.
func TestFlowAllowDirectiveAtSink(t *testing.T) {
	fixture := launderingFixture()
	fixture["util"]["util.go"] = `package util

import "time"

//vet:allow walltime-flow -- blessed boot-time stamp for log headers
func now() time.Time { return time.Now() }

func Stamp() int64 { return now().Unix() }
`
	mod := checkModuleFixture(t, fixture)
	sim := pkgByDir(t, mod, "internal/sim")
	if got := RunPassOnPackage(findAnalyzer(t, "walltime-flow"), mod, sim); len(got) != 0 {
		t.Fatalf("directive at the sink did not suppress:\n%s", renderFindings(got))
	}
}

// FuzzCallGraph feeds the builder arbitrary source: it must never panic,
// and every edge must connect nodes the graph itself declares, regardless of
// how badly the input type-checks.
func FuzzCallGraph(f *testing.F) {
	f.Add("package p\n\nfunc a() { b() }\n\nfunc b() {}\n")
	f.Add("package p\n\ntype t struct{}\n\nfunc (t) m() {}\n\nfunc c(x t) { x.m() }\n")
	f.Add("package p\n\nfunc d() { f := d; f() }\n")
	f.Add("package p\n\nfunc init() {}\n\nfunc init() {}\n")
	f.Add("package p\n\nfunc e() { undeclared(1 + ) }\n")
	f.Add("package p\n\nvar x = func() {}\n\nfunc g() { x() }\n")
	f.Fuzz(func(t *testing.T, src string) {
		mod, _, err := CheckSource("fixturemod/internal/sim", map[string]string{"a.go": src})
		if err != nil {
			t.Skip("unparsable input")
		}
		g := BuildCallGraph(mod)
		declared := map[*Node]bool{}
		for _, n := range g.Nodes() {
			if n.Decl == nil {
				t.Fatalf("node %s has no declaration", n.ID)
			}
			declared[n] = true
		}
		for _, n := range g.Nodes() {
			for _, e := range g.Callees(n) {
				if e.Caller != n {
					t.Fatalf("edge from %s recorded under %s", e.Caller.ID, n.ID)
				}
				if !declared[e.Callee] {
					t.Fatalf("edge %s -> %s targets an undeclared node", e.Caller.ID, e.Callee.ID)
				}
			}
		}
	})
}
