package analysis

import (
	"fmt"
	"sort"

	"causalfl/internal/apps"
	"causalfl/internal/apps/catalog"
	"causalfl/internal/metrics"
	"causalfl/internal/sim"
)

// Domain linters: instead of walking source syntax they walk the application
// catalog (internal/apps/catalog) and verify the properties the paper's
// method assumes of every benchmark topology — an acyclic call graph (the
// causal sets C(s, M) are built over ancestors; a cycle makes "upstream"
// meaningless), full fault-injection coverage (§VI injects into every
// service that has a port; anything else needs an explicit excuse), and a
// coherent metric classification (every dependent metric divided by a
// declared independent one, §V-A).

// catalogFile is the pseudo-position domain findings carry: they describe
// declarations, not a single source line.
const catalogFile = "internal/apps/catalog"

// domainSeed is the fixed seed used to instantiate catalog apps for
// verification; any value works (topologies are seed-independent), it is
// pinned for reproducible output.
const domainSeed = 1

// FindCycle returns one cycle in the edge set as a service sequence
// (first == last), or nil if the graph is acyclic. Exported for the fuzz
// harness, which feeds it adversarial edge sets.
func FindCycle(edges []apps.Edge) []string {
	next := map[string][]string{}
	nodes := map[string]bool{}
	for _, e := range edges {
		next[e.From] = append(next[e.From], e.To)
		nodes[e.From] = true
		nodes[e.To] = true
	}
	sorted := make([]string, 0, len(nodes))
	for n := range nodes {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, succ := range next {
		sort.Strings(succ)
	}

	const (
		white = 0 // unvisited
		gray  = 1 // on the current DFS path
		black = 2 // done
	)
	color := map[string]int{}
	var path []string
	var dfs func(n string) []string
	dfs = func(n string) []string {
		color[n] = gray
		path = append(path, n)
		for _, m := range next[n] {
			switch color[m] {
			case gray:
				// Found: slice the path from m's first occurrence.
				for i, p := range path {
					if p == m {
						return append(append([]string(nil), path[i:]...), m)
					}
				}
			case white:
				if cyc := dfs(m); cyc != nil {
					return cyc
				}
			}
		}
		path = path[:len(path)-1]
		color[n] = black
		return nil
	}
	for _, n := range sorted {
		if color[n] == white {
			if cyc := dfs(n); cyc != nil {
				return cyc
			}
		}
	}
	return nil
}

// buildDefinitions instantiates every catalog app once, reporting builder
// failures as findings and returning the successfully built (def, app) pairs.
func buildDefinitions(report func(Finding)) []builtDef {
	domainFinding := func(format string, args ...any) {
		report(Finding{Pass: "topology", File: catalogFile, Message: fmt.Sprintf(format, args...)})
	}
	defs, err := catalog.Definitions()
	if err != nil {
		domainFinding("catalog enumeration failed: %v", err)
		return nil
	}
	var built []builtDef
	for _, def := range defs {
		if def.Build == nil {
			domainFinding("app %s: definition has no builder", def.Name)
			continue
		}
		app, err := def.Build(sim.NewEngine(domainSeed))
		if err != nil {
			domainFinding("app %s: builder failed: %v", def.Name, err)
			continue
		}
		built = append(built, builtDef{def: def, app: app})
	}
	return built
}

type builtDef struct {
	def apps.Definition
	app *apps.App
}

func topologyAnalyzer() *DomainAnalyzer {
	d := &DomainAnalyzer{
		Name: "topology",
		Doc:  "verifies catalog app topologies: validity, acyclicity, fault-injection coverage, reachability",
	}
	d.Run = func(report func(Finding)) {
		finding := func(format string, args ...any) {
			report(Finding{Pass: d.Name, File: catalogFile, Message: fmt.Sprintf(format, args...)})
		}
		for _, b := range buildDefinitions(report) {
			def, app := b.def, b.app
			if err := def.Validate(); err != nil {
				finding("app %s: invalid definition: %v", def.Name, err)
			}
			if err := app.Validate(); err != nil {
				finding("app %s: invalid app: %v", def.Name, err)
				continue
			}
			if def.Name != app.Name {
				finding("app %s: definition name disagrees with built app name %q", def.Name, app.Name)
			}

			// Acyclicity: causal sets are ancestor sets; cycles break them.
			if cyc := FindCycle(app.Edges); cyc != nil {
				finding("app %s: call graph has a cycle: %v", def.Name, cyc)
			}

			// Injection coverage: every service is a fault target or is
			// excused with a reason; never both, and excuses must name
			// real services.
			targets := map[string]bool{}
			for _, t := range app.FaultTargets {
				targets[t] = true
			}
			for _, svc := range app.Services() {
				if targets[svc] && def.NonInjectable[svc] != "" {
					finding("app %s: service %s is both a fault target and excused (%q)", def.Name, svc, def.NonInjectable[svc])
				}
				if !targets[svc] && def.NonInjectable[svc] == "" {
					finding("app %s: service %s is neither a fault target nor excused via NonInjectable", def.Name, svc)
				}
			}
			services := map[string]bool{}
			for _, svc := range app.Services() {
				services[svc] = true
			}
			excused := make([]string, 0, len(def.NonInjectable))
			for svc := range def.NonInjectable {
				excused = append(excused, svc)
			}
			sort.Strings(excused)
			for _, svc := range excused {
				if !services[svc] {
					finding("app %s: NonInjectable excuses %q, which is not a service of the app", def.Name, svc)
				}
			}

			// Reachability: traffic enters through flows; background
			// (non-injectable) services are autonomous sources. Everything
			// must be reachable from one of the two, or no telemetry ever
			// covers it.
			reach := map[string]bool{}
			var frontier []string
			seed := func(svc string) {
				if services[svc] && !reach[svc] {
					reach[svc] = true
					frontier = append(frontier, svc)
				}
			}
			for _, f := range app.Flows {
				seed(f.Entry)
			}
			for _, svc := range excused {
				seed(svc)
			}
			next := map[string][]string{}
			for _, e := range app.Edges {
				next[e.From] = append(next[e.From], e.To)
			}
			for len(frontier) > 0 {
				n := frontier[0]
				frontier = frontier[1:]
				for _, m := range next[n] {
					seed(m)
				}
			}
			for _, svc := range app.Services() {
				if !reach[svc] {
					finding("app %s: service %s is unreachable from every flow entry and background source", def.Name, svc)
				}
			}
		}
	}
	return d
}

func metricClassAnalyzer() *DomainAnalyzer {
	d := &DomainAnalyzer{
		Name: "metric-class",
		Doc:  "verifies metric classifications: class consistency per app, dependent⊘independent shape of every derived preset metric",
	}
	d.Run = func(report func(Finding)) {
		finding := func(format string, args ...any) {
			report(Finding{Pass: d.Name, File: catalogFile, Message: fmt.Sprintf(format, args...)})
		}
		defs, err := catalog.Definitions()
		if err != nil {
			finding("catalog enumeration failed: %v", err)
			return
		}
		for _, def := range defs {
			if err := def.Metrics.Validate(); err != nil {
				finding("app %s: %v", def.Name, err)
			}
		}

		// Preset audit: every derived metric the pipeline can be asked to
		// compute must divide a dependent raw metric by an independent one
		// (§V-A). The classification of record is metrics.Classify().
		class := metrics.Classify()
		for _, name := range metrics.PresetNames() {
			set, err := metrics.Preset(name)
			if err != nil {
				finding("preset %s: %v", name, err)
				continue
			}
			for _, m := range set {
				if !m.Derived {
					if _, known := class[m.Name]; !known {
						finding("preset %s: raw metric %s is not a known raw metric", name, m.Name)
					}
					continue
				}
				if m.Numerator == "" || m.Denominator == "" {
					finding("preset %s: derived metric %s does not record its numerator/denominator", name, m.Name)
					continue
				}
				if c, known := class[m.Numerator]; !known {
					finding("preset %s: derived metric %s has unknown numerator %q", name, m.Name, m.Numerator)
				} else if c != metrics.Dependent {
					finding("preset %s: derived metric %s divides independent metric %q (numerator must be dependent)", name, m.Name, m.Numerator)
				}
				if c, known := class[m.Denominator]; !known {
					finding("preset %s: derived metric %s has unknown denominator %q", name, m.Name, m.Denominator)
				} else if c != metrics.Independent {
					finding("preset %s: derived metric %s is normalized by dependent metric %q (denominator must be independent)", name, m.Name, m.Denominator)
				}
			}
		}
	}
	return d
}
