package analysis

// Goroutine hygiene, the invariants internal/parallel's contract is built
// on, machine-checked module-wide:
//
//   - goroutine-leak: a spawned goroutine must have a visible termination
//     path. The concrete shape this pass proves absent is an unbounded
//     `for` loop with no exit — no return, no break, no select, no channel
//     operation (a ctx.Done() select, a WaitGroup-coordinated drain and an
//     exit-channel receive all count). The check follows the call graph, so
//     `go t.loop()` is analyzed through loop's body and its callees.
//
//   - unbounded-spawn: `go` inside a loop multiplies goroutines by the
//     iteration count. Fan-out must go through internal/parallel's bounded
//     pool or hold a semaphore slot (a channel send or an Acquire call in
//     the loop before the spawn).

import (
	"go/ast"
	"go/token"
	"go/types"
)

// escapesLoop reports whether an unbounded `for` loop's body contains a way
// out or a coordination point: return, break, goto, select, any channel
// operation, or a range over a channel. Nested function literals are
// excluded — code inside them runs on its own schedule.
func escapesLoop(pkg *Package, body *ast.BlockStmt) bool {
	escapes := false
	ast.Inspect(body, func(n ast.Node) bool {
		if escapes {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt, *ast.SelectStmt, *ast.SendStmt:
			escapes = true
		case *ast.BranchStmt:
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				escapes = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				escapes = true
			}
		case *ast.RangeStmt:
			if pkg.Info != nil {
				if t := pkg.Info.TypeOf(n.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						escapes = true
					}
				}
			}
		}
		return !escapes
	})
	return escapes
}

// hasInescapableLoop reports whether a function body contains an unbounded
// `for` loop with no escape.
func hasInescapableLoop(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if loop, ok := n.(*ast.ForStmt); ok && loop.Cond == nil && !escapesLoop(pkg, loop.Body) {
			found = true
		}
		return !found
	})
	return found
}

// leakClosure returns every node that contains — or can reach a node that
// contains — an inescapable unbounded loop, memoized per module.
func leakClosure(g *CallGraph) map[*Node]bool {
	return g.memoized("goroutine-leak", func() any {
		leaky := map[*Node]bool{}
		for _, n := range g.Nodes() {
			if n.Decl.Body != nil && hasInescapableLoop(n.Pkg, n.Decl.Body) {
				leaky[n] = true
			}
		}
		return g.Reachers(leaky)
	}).(map[*Node]bool)
}

// callTargetsIn resolves every call inside body to module-declared nodes.
func callTargetsIn(g *CallGraph, pkg *Package, body *ast.BlockStmt) []*Node {
	var out []*Node
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, target := range resolveCallTargets(pkg, call.Fun, g.bindings) {
			if node := g.nodeForObj(target); node != nil {
				out = append(out, node)
			}
		}
		return true
	})
	return out
}

func goroutineLeakAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "goroutine-leak",
		Doc:  "flags go statements whose goroutine runs an unbounded loop with no termination path (no ctx.Done() select, channel op, return or break)",
	}
	a.Run = func(p *Pass) {
		g := p.Module.CallGraph()
		leaky := leakClosure(g)
		p.walkFiles(func(file *ast.File, relName string) {
			ast.Inspect(file, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if lit, isLit := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); isLit {
					if hasInescapableLoop(p.Pkg, lit.Body) {
						p.Reportf(gs.Pos(), "goroutine runs an unbounded loop with no termination path (no return, break, select or channel operation); select on ctx.Done() or an exit channel inside the loop")
						return true
					}
					for _, target := range callTargetsIn(g, p.Pkg, lit.Body) {
						if leaky[target] {
							p.Reportf(gs.Pos(), "goroutine calls %s, which runs (or reaches) an unbounded loop with no termination path; select on ctx.Done() or an exit channel inside the loop", target.Short())
							return true
						}
					}
					return true
				}
				for _, target := range resolveCallTargets(p.Pkg, gs.Call.Fun, g.bindings) {
					node := g.nodeForObj(target)
					if node != nil && leaky[node] {
						p.Reportf(gs.Pos(), "goroutine calls %s, which runs (or reaches) an unbounded loop with no termination path; select on ctx.Done() or an exit channel inside the loop", node.Short())
						return true
					}
				}
				return true
			})
		})
	}
	return a
}

// loopFrame is one enclosing loop during the unbounded-spawn walk.
type loopFrame struct {
	body *ast.BlockStmt
}

// semaphoreBefore reports whether the loop body acquires a slot before pos:
// a channel send (`sem <- token{}`) or a call to an Acquire-named method.
func semaphoreBefore(body *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			if n.Pos() < pos {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Acquire" && n.Pos() < pos {
				found = true
			}
		}
		return !found
	})
	return found
}

func unboundedSpawnAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "unbounded-spawn",
		Doc:  "flags go statements inside loops not mediated by internal/parallel or a semaphore acquire",
	}
	a.Run = func(p *Pass) {
		// internal/parallel is the mediator the rest of the module is told
		// to use; its own worker spawn loop is the one sanctioned site.
		if p.InternalPath("internal/parallel") {
			return
		}
		p.walkFiles(func(file *ast.File, relName string) {
			var loops []loopFrame
			var walk func(n ast.Node) bool
			walk = func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ForStmt:
					loops = append(loops, loopFrame{body: n.Body})
					if n.Init != nil {
						ast.Inspect(n.Init, walk)
					}
					ast.Inspect(n.Body, walk)
					loops = loops[:len(loops)-1]
					return false
				case *ast.RangeStmt:
					loops = append(loops, loopFrame{body: n.Body})
					ast.Inspect(n.Body, walk)
					loops = loops[:len(loops)-1]
					return false
				case *ast.GoStmt:
					if len(loops) == 0 {
						return true
					}
					for _, frame := range loops {
						if semaphoreBefore(frame.body, n.Pos()) {
							return true
						}
					}
					p.Reportf(n.Pos(), "go statement inside a loop spawns without a bound; fan out through internal/parallel or acquire a semaphore slot before spawning")
				}
				return true
			}
			ast.Inspect(file, walk)
		})
	}
	return a
}
