package analysis

// The flow passes are the interprocedural closure of the textual determinism
// passes. `walltime` flags a wall-clock read *inside* a deterministic
// package; `walltime-flow` flags a deterministic package *calling* — through
// any chain of module-internal calls — a helper in an unrestricted package
// that reads the clock. Same split for `globalrand` / `rand-flow`. The
// division of labor keeps findings non-overlapping:
//
//   - the read itself, in deterministic scope   → walltime / globalrand
//   - the laundering call into unrestricted code → walltime-flow / rand-flow
//
// Sinks are therefore only functions declared in *unrestricted* packages
// (cmd/, examples/, test tooling); a sink suppressed there with
// `//vet:allow walltime-flow -- reason` (or rand-flow) is blessed for
// deterministic callers too, which is how clock.Wall-style seams are built.
// Interface method calls never propagate taint — dynamic dispatch through
// clock.Clock or a seeded *rand.Rand is exactly the sanctioned pattern.

import (
	"go/ast"
	"strings"
)

// flowSpec describes one taint domain.
type flowSpec struct {
	name string
	doc  string
	// sinkOf classifies a selector as a sink, returning its display name
	// ("time.Now", "rand.Intn").
	sinkOf func(pkg *Package, file *ast.File, sel *ast.SelectorExpr) (string, bool)
	// remedy closes the finding message.
	remedy string
}

func wallSinkOf(pkg *Package, file *ast.File, sel *ast.SelectorExpr) (string, bool) {
	pkgPath, name, ok := pkgSelector(pkg, file, sel)
	if !ok || pkgPath != "time" || !wallSelectors[name] {
		return "", false
	}
	return "time." + name, true
}

func randSinkOf(pkg *Package, file *ast.File, sel *ast.SelectorExpr) (string, bool) {
	pkgPath, name, ok := pkgSelector(pkg, file, sel)
	if !ok || (pkgPath != "math/rand" && pkgPath != "math/rand/v2") || randConstructors[name] {
		return "", false
	}
	return "rand." + name, true
}

func wallTimeFlowAnalyzer() *Analyzer {
	return flowAnalyzer(flowSpec{
		name:   "walltime-flow",
		doc:    "forbids deterministic packages from transitively reaching a wall-clock read through helpers in unrestricted packages",
		sinkOf: wallSinkOf,
		remedy: "thread a clock.Clock (internal/clock) through the call instead",
	})
}

func randFlowAnalyzer() *Analyzer {
	return flowAnalyzer(flowSpec{
		name:   "rand-flow",
		doc:    "forbids deterministic packages from transitively reaching a global math/rand draw through helpers in unrestricted packages",
		sinkOf: randSinkOf,
		remedy: "pass a seeded *rand.Rand through the call instead",
	})
}

// flowSinks finds every function declared in an unrestricted package whose
// body contains a sink selector not suppressed at its line by a
// `//vet:allow <pass>` directive. Keyed per node; the value names the sink.
func flowSinks(g *CallGraph, spec flowSpec) map[*Node]string {
	sinks := map[*Node]string{}
	allowed := map[*ast.File]allowSet{}
	for _, n := range g.Nodes() {
		if deterministicPkg(g.mod, n.Pkg) || n.Decl.Body == nil {
			continue
		}
		node := n
		ast.Inspect(node.Decl.Body, func(x ast.Node) bool {
			sel, ok := x.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			desc, isSink := spec.sinkOf(node.Pkg, node.File, sel)
			if !isSink {
				return true
			}
			set, ok := allowed[node.File]
			if !ok {
				set = parseDirectives(g.mod.Fset, node.File)
				allowed[node.File] = set
			}
			if set.allows(g.mod.Fset.Position(sel.Pos()).Line, spec.name) {
				return true
			}
			if _, seen := sinks[node]; !seen {
				sinks[node] = desc
			}
			return true
		})
	}
	return sinks
}

// renderChain renders the deterministic shortest call chain from a tainted
// callee down to its sink, ending in the sink's selector:
// "util.Stamp → util.now → time.Now".
func renderChain(g *CallGraph, from *Node, sinks map[*Node]string) string {
	targets := make(map[*Node]bool, len(sinks))
	for n := range sinks {
		targets[n] = true
	}
	path := g.Path(from, targets)
	if path == nil {
		return from.Short()
	}
	var parts []string
	for _, n := range path {
		parts = append(parts, n.Short())
	}
	parts = append(parts, sinks[path[len(path)-1]])
	return strings.Join(parts, " → ")
}

// flowTaint bundles the memoized per-module taint computation: the sink
// functions and the closure of nodes that reach one.
type flowTaint struct {
	sinks   map[*Node]string
	tainted map[*Node]bool
}

func flowAnalyzer(spec flowSpec) *Analyzer {
	a := &Analyzer{Name: spec.name, Doc: spec.doc}
	a.Run = func(p *Pass) {
		if !deterministicPkg(p.Module, p.Pkg) {
			return
		}
		g := p.Module.CallGraph()
		// Sinks and the reachability closure are module-level facts, computed
		// once and shared across all restricted packages.
		taint := g.memoized("flow:"+spec.name, func() any {
			sinks := flowSinks(g, spec)
			targets := make(map[*Node]bool, len(sinks))
			for n := range sinks {
				targets[n] = true
			}
			return &flowTaint{sinks: sinks, tainted: g.Reachers(targets)}
		}).(*flowTaint)
		sinks, tainted := taint.sinks, taint.tainted
		if len(sinks) == 0 {
			return
		}
		for _, n := range g.Nodes() {
			if n.Pkg != p.Pkg {
				continue
			}
			for _, e := range g.Callees(n) {
				// Flag only the boundary crossing: a call whose callee is
				// outside the deterministic scope and reaches a sink. Calls
				// between restricted packages are covered at the eventual
				// boundary edge, not on every hop.
				if !tainted[e.Callee] || deterministicPkg(p.Module, e.Callee.Pkg) {
					continue
				}
				p.Reportf(e.Site, "%s calls %s, which transitively reaches %s outside the deterministic scope; %s",
					n.Short(), e.Callee.Short(), renderChain(g, e.Callee, sinks), spec.remedy)
			}
		}
	}
	return a
}
