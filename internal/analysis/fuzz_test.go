package analysis

import (
	"fmt"
	"testing"

	"causalfl/internal/apps"
)

// edgesFromBytes decodes fuzz input into an edge set over a small node space
// (16 nodes), so random inputs routinely produce shared nodes, duplicate
// edges, self loops and cycles.
func edgesFromBytes(data []byte) []apps.Edge {
	var edges []apps.Edge
	for i := 0; i+1 < len(data); i += 2 {
		edges = append(edges, apps.Edge{
			From: fmt.Sprintf("n%d", data[i]%16),
			To:   fmt.Sprintf("n%d", data[i+1]%16),
		})
	}
	return edges
}

// FuzzTopology feeds the topology linter's cycle detector adversarial edge
// sets: it must never panic, any reported cycle must be a genuine closed
// simple cycle over the input edges, and an injected cycle must always be
// flagged.
func FuzzTopology(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 2, 3, 3, 4})       // chain
	f.Add([]byte{1, 1})                   // self loop
	f.Add([]byte{1, 2, 2, 1})             // two-cycle
	f.Add([]byte{1, 2, 1, 3, 2, 4, 3, 4}) // diamond
	f.Fuzz(func(t *testing.T, data []byte) {
		edges := edgesFromBytes(data)
		cyc := FindCycle(edges)
		if cyc != nil {
			if len(cyc) < 2 || cyc[0] != cyc[len(cyc)-1] {
				t.Fatalf("cycle %v is not closed", cyc)
			}
			present := map[apps.Edge]bool{}
			for _, e := range edges {
				present[e] = true
			}
			for i := 0; i+1 < len(cyc); i++ {
				if !present[apps.Edge{From: cyc[i], To: cyc[i+1]}] {
					t.Fatalf("cycle %v uses edge %s->%s, which is not in the input", cyc, cyc[i], cyc[i+1])
				}
			}
		}
		// Whatever the input graph looks like, grafting a two-cycle onto it
		// must be detected. The node names cannot collide with the n0..n15
		// space above.
		withCycle := append(append([]apps.Edge(nil), edges...),
			apps.Edge{From: "injected-x", To: "injected-y"},
			apps.Edge{From: "injected-y", To: "injected-x"})
		if FindCycle(withCycle) == nil {
			t.Fatal("injected two-cycle was not flagged")
		}
	})
}
