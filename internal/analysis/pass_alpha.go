package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// Significance thresholds scattered as bare literals drift: one caller tests
// at 0.05, another at 0.01, and the evaluation section quietly stops
// describing the code. Every alpha / p-value threshold must be a named
// constant in internal/stats (DefaultAlpha, StrictAlpha, ...). The pass is
// slot-directed rather than value-directed: 0.05 as a packet-loss rate is
// fine, 0.05 flowing into a parameter, variable, field, or comparison named
// alpha/pval is not.

// alphaLiterals are the conventional significance levels worth policing.
// Stored as exact rationals so source literals compare exactly.
var alphaLiterals = []constant.Value{
	constant.MakeFromLiteral("0.05", token.FLOAT, 0),
	constant.MakeFromLiteral("0.01", token.FLOAT, 0),
	constant.MakeFromLiteral("0.025", token.FLOAT, 0),
	constant.MakeFromLiteral("0.005", token.FLOAT, 0),
	constant.MakeFromLiteral("0.001", token.FLOAT, 0),
	constant.MakeFromLiteral("0.1", token.FLOAT, 0),
}

// statsConstPackage is the one module package allowed to spell significance
// levels as literals, and only in const declarations.
const statsConstPackage = "internal/stats"

// alphaSlotName reports whether an identifier names a significance slot.
func alphaSlotName(name string) bool {
	lower := strings.ToLower(name)
	if lower == "p" || lower == "q" || lower == "pvalue" {
		return true
	}
	return strings.Contains(lower, "alpha") || strings.Contains(lower, "pval")
}

func magicAlphaAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "magic-alpha",
		Doc:  "forbids bare significance-level literals (0.05, 0.01, ...) outside internal/stats constants",
	}
	a.Run = func(p *Pass) {
		info := p.Pkg.Info
		isAlphaLiteral := func(e ast.Expr) bool {
			lit, isLit := e.(*ast.BasicLit)
			if !isLit || lit.Kind != token.FLOAT {
				return false
			}
			val := constant.MakeFromLiteral(lit.Value, token.FLOAT, 0)
			if val.Kind() == constant.Unknown {
				return false
			}
			for _, known := range alphaLiterals {
				if constant.Compare(val, token.EQL, known) {
					return true
				}
			}
			return false
		}
		report := func(e ast.Expr, slot string) {
			p.Reportf(e.Pos(), "bare significance level %s flows into %s; use a named constant from internal/stats (e.g. stats.DefaultAlpha)", e.(*ast.BasicLit).Value, slot)
		}
		paramName := func(call *ast.CallExpr, argIndex int) string {
			if info == nil {
				return ""
			}
			tv, ok := info.Types[call.Fun]
			if !ok || tv.Type == nil {
				return ""
			}
			sig, isSig := tv.Type.Underlying().(*types.Signature)
			if !isSig {
				return ""
			}
			params := sig.Params()
			if params.Len() == 0 {
				return ""
			}
			i := argIndex
			if sig.Variadic() && i >= params.Len()-1 {
				i = params.Len() - 1
			}
			if i >= params.Len() {
				return ""
			}
			return params.At(i).Name()
		}

		p.walkFiles(func(file *ast.File, relName string) {
			ast.Inspect(file, func(n ast.Node) bool {
				switch node := n.(type) {
				case *ast.GenDecl:
					// Const declarations in internal/stats are the one
					// blessed home; still descend to catch literals in
					// var initializers there.
					if node.Tok == token.CONST && p.InternalPath(statsConstPackage) {
						return false
					}
					for _, spec := range node.Specs {
						vs, isValue := spec.(*ast.ValueSpec)
						if !isValue {
							continue
						}
						for i, value := range vs.Values {
							if i < len(vs.Names) && alphaSlotName(vs.Names[i].Name) && isAlphaLiteral(value) {
								report(value, node.Tok.String()+" "+vs.Names[i].Name)
							}
						}
					}
				case *ast.AssignStmt:
					for i, rhs := range node.Rhs {
						if i >= len(node.Lhs) || !isAlphaLiteral(rhs) {
							continue
						}
						if ident, isIdent := node.Lhs[i].(*ast.Ident); isIdent && alphaSlotName(ident.Name) {
							report(rhs, "assignment to "+ident.Name)
						}
						if sel, isSel := node.Lhs[i].(*ast.SelectorExpr); isSel && alphaSlotName(sel.Sel.Name) {
							report(rhs, "assignment to field "+sel.Sel.Name)
						}
					}
				case *ast.KeyValueExpr:
					if key, isIdent := node.Key.(*ast.Ident); isIdent && alphaSlotName(key.Name) && isAlphaLiteral(node.Value) {
						report(node.Value, "field "+key.Name)
					}
				case *ast.CallExpr:
					for i, arg := range node.Args {
						if !isAlphaLiteral(arg) {
							continue
						}
						if name := paramName(node, i); name != "" && alphaSlotName(name) {
							report(arg, "parameter "+name)
						}
					}
				case *ast.BinaryExpr:
					switch node.Op {
					case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
					default:
						return true
					}
					check := func(lit, other ast.Expr) {
						if !isAlphaLiteral(lit) {
							return
						}
						if ident, isIdent := other.(*ast.Ident); isIdent && alphaSlotName(ident.Name) {
							report(lit, "comparison with "+ident.Name)
						}
					}
					check(node.X, node.Y)
					check(node.Y, node.X)
				}
				return true
			})
		})
	}
	return a
}
