// Package analysis implements causalfl-vet: a project-invariant static
// analyzer for determinism, statistical correctness and topology validity.
//
// The paper's methodology only holds when runs are reproducible (every
// stochastic choice seeded, no wall-clock reads in deterministic code) and
// the causal model is well-formed (acyclic call graphs, every dependent
// metric paired with an independent divisor). Those invariants are cheap to
// break in review and expensive to debug after the fact, so this package
// machine-enforces them in two layers:
//
//   - Code analyzers walk every package of the module with go/ast +
//     go/types (stdlib only) and flag hygiene violations: global math/rand
//     use, wall-clock reads in deterministic packages, floating-point
//     equality, panics in library paths, discarded snapshot-I/O errors, and
//     magic significance levels.
//
//   - Domain linters validate the declarative application definitions in
//     internal/apps/* through the catalog introspection hooks: call-graph
//     acyclicity, fault-injectability of every declared service, and
//     metric-classification completeness.
//
// Findings not covered by the committed baseline file (or an inline
// `//vet:allow pass -- reason` directive) fail the build; see
// docs/STATIC_ANALYSIS.md.
package analysis

import (
	"errors"
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// Analyzer is one code pass, run once per loaded package.
type Analyzer struct {
	// Name is the pass identifier used in findings, directives, baseline
	// entries and -passes selections.
	Name string
	// Doc is the one-line description `causalfl-vet -list` prints.
	Doc string
	// Run inspects one package and reports findings.
	Run func(*Pass)
}

// DomainAnalyzer is one project-level pass over the application catalog
// rather than over source syntax.
type DomainAnalyzer struct {
	Name string
	Doc  string
	// Run reports findings through report.
	Run func(report func(Finding))
}

// Pass gives a code analyzer its per-package view.
type Pass struct {
	// Analyzer is the running pass.
	Analyzer *Analyzer
	// Module is the loaded module (shared).
	Module *Module
	// Pkg is the package under analysis.
	Pkg *Package
	// Fset positions all files.
	Fset   *token.FileSet
	report func(Finding)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Finding{
		Pass:    p.Analyzer.Name,
		File:    p.Module.Rel(position),
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// InternalPath reports whether the package under analysis lives below the
// given module-relative prefix (e.g. "internal/sim").
func (p *Pass) InternalPath(prefix string) bool {
	return p.Module.pkgUnder(p.Pkg, prefix)
}

// Options configures a run.
type Options struct {
	// Dir is the module root to analyze.
	Dir string
	// Passes selects analyzers by name; empty means all.
	Passes []string
	// SkipDomain disables the catalog linters. The engine itself also
	// skips them when the scanned module is not this project (fixture
	// modules in tests), since domain passes introspect the compiled-in
	// catalog, not the scanned source.
	SkipDomain bool
}

// Result is the outcome of a run, before baseline filtering.
type Result struct {
	// Module is the scanned module's path (the JSON envelope records it so
	// CI diffs are unambiguous about what was scanned).
	Module string
	// Findings is sorted by position.
	Findings []Finding
	// TypeErrors describes loader degradation: passes ran, but
	// type-sensitive checks may have been incomplete.
	TypeErrors []string
	// Packages counts the packages analyzed.
	Packages int
}

// ErrUnknownPass rejects a -passes selection naming no registered analyzer;
// the CLI prints the pass catalogue when it sees this error.
var ErrUnknownPass = errors.New("unknown pass")

// selectedSet normalizes the pass selection; nil means "all".
func selectedSet(names []string) (map[string]bool, error) {
	if len(names) == 0 {
		return nil, nil
	}
	known := map[string]bool{}
	for _, a := range CodeAnalyzers() {
		known[a.Name] = true
	}
	for _, d := range DomainAnalyzers() {
		known[d.Name] = true
	}
	set := map[string]bool{}
	for _, name := range names {
		if !known[name] {
			return nil, fmt.Errorf("analysis: %w %q", ErrUnknownPass, name)
		}
		set[name] = true
	}
	return set, nil
}

// Run loads the module at opts.Dir and executes the selected analyzers.
func Run(opts Options) (*Result, error) {
	selected, err := selectedSet(opts.Passes)
	if err != nil {
		return nil, err
	}
	mod, err := LoadModule(opts.Dir)
	if err != nil {
		return nil, err
	}
	res := &Result{Module: mod.Path, Packages: len(mod.Packages)}
	for _, pkg := range mod.Packages {
		for _, terr := range pkg.TypeErrors {
			res.TypeErrors = append(res.TypeErrors, fmt.Sprintf("%s: %v", pkg.ImportPath, terr))
		}
	}

	var findings []Finding
	collect := func(f Finding) { findings = append(findings, f) }
	for _, pkg := range mod.Packages {
		for _, a := range CodeAnalyzers() {
			if selected != nil && !selected[a.Name] {
				continue
			}
			a.Run(&Pass{Analyzer: a, Module: mod, Pkg: pkg, Fset: mod.Fset, report: collect})
		}
	}
	// Domain passes validate this project's compiled-in catalog; running
	// them while scanning some other module would attribute their findings
	// to the wrong tree.
	if !opts.SkipDomain && mod.Path == ProjectModule {
		for _, d := range DomainAnalyzers() {
			if selected != nil && !selected[d.Name] {
				continue
			}
			d.Run(collect)
		}
	}

	res.Findings = filterAllowed(mod, findings)
	sortFindings(res.Findings)
	return res, nil
}

// ProjectModule is the module path whose catalog the domain linters verify.
const ProjectModule = "causalfl"

// filterAllowed drops findings suppressed by inline directives.
func filterAllowed(mod *Module, findings []Finding) []Finding {
	// Parse directives lazily, once per file that has findings.
	byFile := map[string]allowSet{}
	fileFor := func(rel string) (allowSet, bool) {
		if set, ok := byFile[rel]; ok {
			return set, set != nil
		}
		for _, pkg := range mod.Packages {
			for i, name := range pkg.FileNames {
				if name == rel {
					set := parseDirectives(mod.Fset, pkg.Files[i])
					byFile[rel] = set
					return set, true
				}
			}
		}
		byFile[rel] = nil
		return nil, false
	}
	kept := findings[:0]
	for _, f := range findings {
		if f.Line > 0 {
			if set, ok := fileFor(f.File); ok && set.allows(f.Line, f.Pass) {
				continue
			}
		}
		kept = append(kept, f)
	}
	return kept
}

// RunPassOnPackage executes one code analyzer over an already loaded
// package — the fixture entry point for the table-driven pass tests.
// Inline directives are honored, findings are sorted.
func RunPassOnPackage(a *Analyzer, mod *Module, pkg *Package) []Finding {
	var findings []Finding
	a.Run(&Pass{Analyzer: a, Module: mod, Pkg: pkg, Fset: mod.Fset, report: func(f Finding) {
		findings = append(findings, f)
	}})
	findings = filterAllowed(mod, findings)
	sortFindings(findings)
	return findings
}

// PassNames lists every analyzer name (code passes first, then domain),
// each with its doc line, for -list output.
func PassNames() []string {
	var out []string
	for _, a := range CodeAnalyzers() {
		out = append(out, fmt.Sprintf("%-16s %s", a.Name, a.Doc))
	}
	for _, d := range DomainAnalyzers() {
		out = append(out, fmt.Sprintf("%-16s %s", d.Name, d.Doc))
	}
	sort.Strings(out)
	return out
}

// walkFiles applies fn to every file of the package with its directives
// pre-parsed — a convenience for passes.
func (p *Pass) walkFiles(fn func(file *ast.File, relName string)) {
	for i, file := range p.Pkg.Files {
		fn(file, p.Pkg.FileNames[i])
	}
}
