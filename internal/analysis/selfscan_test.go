package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// moduleRoot locates the repository root from the test's working directory
// (internal/analysis) by walking up to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatalf("getwd: %v", err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}

// TestSelfScanMatchesCommittedBaseline runs the full analyzer over this
// repository and asserts the committed baseline covers exactly the current
// findings: nothing fresh (a new violation must be fixed or baselined) and
// nothing stale (a fixed violation must leave the baseline).
func TestSelfScanMatchesCommittedBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("full module type-check; skipped in -short")
	}
	root := moduleRoot(t)
	res, err := Run(Options{Dir: root})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Packages == 0 {
		t.Fatal("self scan loaded no packages")
	}
	for _, te := range res.TypeErrors {
		t.Errorf("type-check degradation: %s", te)
	}
	// The scan must cover the whole tree, examples and commands included.
	wantPkgs := []string{"internal/sim", "internal/analysis", "cmd/causalfl-vet", "examples/quickstart"}
	seen := map[string]bool{}
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	for _, pkg := range mod.Packages {
		seen[pkg.RelDir] = true
	}
	for _, want := range wantPkgs {
		if !seen[want] {
			t.Errorf("self scan did not load %s", want)
		}
	}

	baseline, err := LoadBaseline(filepath.Join(root, "vet-baseline.json"))
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	fresh, _, stale := baseline.Filter(res.Findings)
	for _, f := range fresh {
		t.Errorf("unbaselined finding: %s", f)
	}
	for _, e := range stale {
		t.Errorf("stale baseline entry: %s: %s (%s)", e.File, e.Message, e.Pass)
	}
}
