package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Finding is one reported violation. File is module-relative (domain
// findings, which describe declarations rather than a source line, carry the
// synthetic locus "internal/apps/catalog" with no line), so findings are
// stable across checkouts and usable as baseline keys.
type Finding struct {
	// Pass names the analyzer that produced the finding.
	Pass string `json:"pass"`
	// File is the module-relative path, or the synthetic catalog locus for
	// domain findings about an application definition.
	File string `json:"file"`
	// Line and Col are 1-based; zero when the finding has no position.
	Line int `json:"line,omitempty"`
	Col  int `json:"col,omitempty"`
	// Message describes the violation and the expected remedy.
	Message string `json:"message"`
}

// Position renders the machine-readable "file:line:col" locus (file alone
// when the finding has no position).
func (f Finding) Position() string {
	if f.Line == 0 {
		return f.File
	}
	return fmt.Sprintf("%s:%d:%d", f.File, f.Line, f.Col)
}

// Key is the line-insensitive identity used by the baseline: pass, file and
// message, but not line/col, so unrelated edits that shift code do not
// invalidate suppressions.
func (f Finding) Key() string {
	return f.Pass + "\x00" + f.File + "\x00" + f.Message
}

// String renders the finding in the conventional compiler format.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Position(), f.Message, f.Pass)
}

// sortFindings orders findings by file, line, column, pass, message.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		return a.Message < b.Message
	})
}

// WriteText renders findings one per line.
func WriteText(w io.Writer, fs []Finding) error {
	for _, f := range fs {
		if _, err := fmt.Fprintln(w, f.String()); err != nil {
			return fmt.Errorf("analysis: write findings: %w", err)
		}
	}
	return nil
}

// jsonReport is the machine-readable output schema of `causalfl-vet -json`.
// The envelope names the scanned module and the pass catalogue of this build
// so CI diffs are self-describing: a findings delta caused by a new pass is
// distinguishable from one caused by a code change.
type jsonReport struct {
	// Module is the scanned module's path.
	Module string `json:"module"`
	// Passes is the catalogue of pass names compiled into this binary, in
	// registration order (code passes, then domain passes).
	Passes []string `json:"passes"`
	// Findings are the violations not covered by the baseline.
	Findings []Finding `json:"findings"`
	// Suppressed counts findings covered by the baseline.
	Suppressed int `json:"suppressed"`
	// Stale lists baseline entries that no fresh finding matched; they
	// should be removed from the baseline file.
	Stale []BaselineEntry `json:"stale,omitempty"`
	// TypeErrors surface loader degradation (passes still ran on the
	// syntax, but type-sensitive checks may have been incomplete).
	TypeErrors []string `json:"type_errors,omitempty"`
}

// PassCatalogue returns every registered pass name in registration order,
// code passes first.
func PassCatalogue() []string {
	var out []string
	for _, a := range CodeAnalyzers() {
		out = append(out, a.Name)
	}
	for _, d := range DomainAnalyzers() {
		out = append(out, d.Name)
	}
	return out
}

// WriteJSON renders the full machine-readable report for the named module.
func WriteJSON(w io.Writer, module string, fs []Finding, suppressed int, stale []BaselineEntry, typeErrors []string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if fs == nil {
		fs = []Finding{}
	}
	report := jsonReport{
		Module:     module,
		Passes:     PassCatalogue(),
		Findings:   fs,
		Suppressed: suppressed,
		Stale:      stale,
		TypeErrors: typeErrors,
	}
	if err := enc.Encode(report); err != nil {
		return fmt.Errorf("analysis: encode findings: %w", err)
	}
	return nil
}

// Summary renders the one-line outcome that closes a text run.
func Summary(fresh, suppressed, stale int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d finding(s)", fresh)
	if suppressed > 0 {
		fmt.Fprintf(&b, ", %d baselined", suppressed)
	}
	if stale > 0 {
		fmt.Fprintf(&b, ", %d stale baseline entr(ies)", stale)
	}
	return b.String()
}
