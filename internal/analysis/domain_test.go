package analysis

import (
	"strings"
	"testing"

	"causalfl/internal/apps"
)

// collectDomain runs one domain analyzer and returns its findings.
func collectDomain(t *testing.T, name string) []Finding {
	t.Helper()
	for _, d := range DomainAnalyzers() {
		if d.Name != name {
			continue
		}
		var out []Finding
		d.Run(func(f Finding) { out = append(out, f) })
		return out
	}
	t.Fatalf("no domain analyzer named %q", name)
	return nil
}

// The shipped catalog must be clean: every app acyclic, fully covered by
// fault injection (or excused), reachable, and consistently classified.
func TestCatalogPassesDomainLinters(t *testing.T) {
	for _, name := range []string{"topology", "metric-class"} {
		if findings := collectDomain(t, name); len(findings) != 0 {
			t.Errorf("%s found %d problem(s) in the shipped catalog:\n%s", name, len(findings), renderFindings(findings))
		}
	}
}

func TestFindCycle(t *testing.T) {
	cases := []struct {
		name  string
		edges []apps.Edge
		want  bool
	}{
		{name: "empty", edges: nil, want: false},
		{name: "chain", edges: []apps.Edge{{From: "a", To: "b"}, {From: "b", To: "c"}}, want: false},
		{name: "diamond", edges: []apps.Edge{
			{From: "a", To: "b"}, {From: "a", To: "c"},
			{From: "b", To: "d"}, {From: "c", To: "d"},
		}, want: false},
		{name: "self loop", edges: []apps.Edge{{From: "a", To: "a"}}, want: true},
		{name: "two cycle", edges: []apps.Edge{{From: "a", To: "b"}, {From: "b", To: "a"}}, want: true},
		{name: "deep cycle", edges: []apps.Edge{
			{From: "root", To: "a"}, {From: "a", To: "b"},
			{From: "b", To: "c"}, {From: "c", To: "a"},
		}, want: true},
		{name: "duplicate edges stay acyclic", edges: []apps.Edge{
			{From: "a", To: "b"}, {From: "a", To: "b"},
		}, want: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cyc := FindCycle(tc.edges)
			if (cyc != nil) != tc.want {
				t.Fatalf("FindCycle = %v, want cycle=%v", cyc, tc.want)
			}
			if cyc != nil {
				if len(cyc) < 2 || cyc[0] != cyc[len(cyc)-1] {
					t.Errorf("cycle %v is not closed", cyc)
				}
				onPath := map[string]bool{}
				for _, n := range cyc[:len(cyc)-1] {
					if onPath[n] {
						t.Errorf("cycle %v revisits %s", cyc, n)
					}
					onPath[n] = true
				}
			}
		})
	}
}

func TestFindCycleIsDeterministic(t *testing.T) {
	edges := []apps.Edge{
		{From: "c", To: "a"}, {From: "a", To: "b"}, {From: "b", To: "c"},
		{From: "z", To: "y"}, {From: "y", To: "z"},
	}
	first := strings.Join(FindCycle(edges), "->")
	for i := 0; i < 20; i++ {
		if got := strings.Join(FindCycle(edges), "->"); got != first {
			t.Fatalf("run %d returned %q, first run returned %q", i, got, first)
		}
	}
}
