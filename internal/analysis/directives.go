package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directives complement the baseline file for findings that are
// intentional forever (not just grandfathered):
//
//	var Wall Clock = Func(time.Now) //vet:allow walltime -- the blessed source
//
// A directive allows the named passes on its own line and on the following
// line (covering both trailing and preceding placement). The "-- reason"
// suffix is mandatory so every suppression documents itself; reasonless
// directives are ignored (and the finding stands).

const directivePrefix = "vet:allow"

// allowSet records which passes are allowed on which lines of one file.
type allowSet map[int]map[string]bool

// allows reports whether pass is suppressed at line.
func (a allowSet) allows(line int, pass string) bool {
	return a[line][pass]
}

// parseDirectives scans a file's comments for vet:allow directives.
func parseDirectives(fset *token.FileSet, file *ast.File) allowSet {
	set := allowSet{}
	for _, group := range file.Comments {
		for _, comment := range group.List {
			text := strings.TrimPrefix(comment.Text, "//")
			text = strings.TrimPrefix(text, "/*")
			text = strings.TrimSuffix(text, "*/")
			text = strings.TrimSpace(text)
			rest, ok := strings.CutPrefix(text, directivePrefix)
			if !ok {
				continue
			}
			spec, reason, hasReason := strings.Cut(rest, "--")
			if !hasReason || strings.TrimSpace(reason) == "" {
				continue
			}
			line := fset.Position(comment.Pos()).Line
			for _, pass := range strings.Split(spec, ",") {
				pass = strings.TrimSpace(pass)
				if pass == "" {
					continue
				}
				for _, l := range []int{line, line + 1} {
					if set[l] == nil {
						set[l] = map[string]bool{}
					}
					set[l][pass] = true
				}
			}
		}
	}
	return set
}
