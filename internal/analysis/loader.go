package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// The loader walks a module directory, parses every package with go/parser
// and type-checks it with go/types — stdlib only, no golang.org/x/tools.
// Module-internal imports are resolved from the packages being loaded (in
// dependency order); standard-library imports go through the compiler's
// source importer. Type-check errors degrade gracefully: passes always see
// the syntax, and type-sensitive checks skip what they cannot prove.

// Package is one loaded, parsed and (best-effort) type-checked package.
type Package struct {
	// ImportPath is the full import path (module path + relative dir).
	ImportPath string
	// RelDir is the module-relative directory ("." for the module root).
	RelDir string
	// Name is the package name ("main" for commands and examples).
	Name string
	// Files holds the parsed syntax; FileNames holds the matching
	// module-relative paths.
	Files     []*ast.File
	FileNames []string
	// Types is the checked package; it may be incomplete when TypeErrors
	// is non-empty.
	Types *types.Package
	// Info carries the type-checker's expression and identifier records.
	Info *types.Info
	// TypeErrors collects soft type-check errors.
	TypeErrors []error
}

// Module is a fully loaded module.
type Module struct {
	// Path is the module path from go.mod.
	Path string
	// Dir is the absolute module root.
	Dir string
	// Fset positions all parsed files (including source-imported stdlib).
	Fset *token.FileSet
	// Packages is sorted by import path.
	Packages []*Package

	// cg caches the call graph the interprocedural passes share.
	cgOnce sync.Once
	cg     *CallGraph
}

// pkgUnder reports whether pkg lives at or below the module-relative prefix.
func (m *Module) pkgUnder(pkg *Package, prefix string) bool {
	full := m.Path + "/" + prefix
	return pkg.ImportPath == full || len(pkg.ImportPath) > len(full) && pkg.ImportPath[:len(full)+1] == full+"/"
}

// Rel converts a position to a module-relative "path" string.
func (m *Module) Rel(pos token.Position) string {
	rel, err := filepath.Rel(m.Dir, pos.Filename)
	if err != nil {
		return pos.Filename
	}
	return filepath.ToSlash(rel)
}

// modulePath extracts the module path from go.mod.
func modulePath(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("analysis: %s is not a module root: %w", dir, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			name := strings.TrimSpace(rest)
			if unquoted, err := strconv.Unquote(name); err == nil {
				name = unquoted
			}
			if name != "" {
				return name, nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s/go.mod", dir)
}

// skipDir reports directories the walker never descends into.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// LoadModule parses and type-checks every package under dir.
func LoadModule(dir string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: resolve %s: %w", dir, err)
	}
	modPath, err := modulePath(abs)
	if err != nil {
		return nil, err
	}
	mod := &Module{Path: modPath, Dir: abs, Fset: token.NewFileSet()}

	// Collect package directories.
	var pkgDirs []string
	err = filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if path != abs && skipDir(d.Name()) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				pkgDirs = append(pkgDirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("analysis: walk %s: %w", abs, err)
	}
	sort.Strings(pkgDirs)

	// Parse each directory into a Package.
	byPath := make(map[string]*Package, len(pkgDirs))
	for _, pkgDir := range pkgDirs {
		rel, err := filepath.Rel(abs, pkgDir)
		if err != nil {
			return nil, fmt.Errorf("analysis: relativize %s: %w", pkgDir, err)
		}
		rel = filepath.ToSlash(rel)
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + rel
		}
		pkg := &Package{ImportPath: importPath, RelDir: rel}
		entries, err := os.ReadDir(pkgDir)
		if err != nil {
			return nil, fmt.Errorf("analysis: read %s: %w", pkgDir, err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			file, err := parser.ParseFile(mod.Fset, filepath.Join(pkgDir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				pkg.TypeErrors = append(pkg.TypeErrors, err)
				continue
			}
			// External-test packages (pkg_test) never ship; ignore them.
			if strings.HasSuffix(file.Name.Name, "_test") {
				continue
			}
			if pkg.Name == "" {
				pkg.Name = file.Name.Name
			}
			if file.Name.Name != pkg.Name {
				pkg.TypeErrors = append(pkg.TypeErrors,
					fmt.Errorf("%s: package %s conflicts with %s", name, file.Name.Name, pkg.Name))
				continue
			}
			relFile := name
			if rel != "." {
				relFile = rel + "/" + name
			}
			pkg.Files = append(pkg.Files, file)
			pkg.FileNames = append(pkg.FileNames, relFile)
		}
		if len(pkg.Files) == 0 {
			continue
		}
		byPath[importPath] = pkg
		mod.Packages = append(mod.Packages, pkg)
	}

	typeCheck(mod, byPath)
	return mod, nil
}

// moduleImporter resolves module-internal imports from the loaded set and
// everything else through the compiler's source importer.
type moduleImporter struct {
	modPath string
	local   map[string]*types.Package
	std     types.Importer
}

func (i *moduleImporter) Import(path string) (*types.Package, error) {
	if path == i.modPath || strings.HasPrefix(path, i.modPath+"/") {
		if pkg, ok := i.local[path]; ok && pkg != nil {
			return pkg, nil
		}
		return nil, fmt.Errorf("module package %s not loaded (import cycle or earlier failure)", path)
	}
	return i.std.Import(path)
}

// typeCheck checks every package in dependency order so that internal
// imports resolve to already-checked packages.
func typeCheck(mod *Module, byPath map[string]*Package) {
	// Topological order over module-internal imports (Kahn). Go forbids
	// import cycles, so leftovers indicate a parse problem; they are
	// checked last, best-effort.
	deps := make(map[string][]string, len(mod.Packages))
	indegree := make(map[string]int, len(mod.Packages))
	for _, pkg := range mod.Packages {
		indegree[pkg.ImportPath] = 0
	}
	for _, pkg := range mod.Packages {
		seen := map[string]bool{}
		for _, file := range pkg.Files {
			for _, imp := range file.Imports {
				target, err := strconv.Unquote(imp.Path.Value)
				if err != nil || seen[target] {
					continue
				}
				seen[target] = true
				if _, internal := byPath[target]; internal {
					deps[target] = append(deps[target], pkg.ImportPath)
					indegree[pkg.ImportPath]++
				}
			}
		}
	}
	var queue []string
	for path, n := range indegree {
		if n == 0 {
			queue = append(queue, path)
		}
	}
	sort.Strings(queue)
	var order []string
	for len(queue) > 0 {
		path := queue[0]
		queue = queue[1:]
		order = append(order, path)
		next := deps[path]
		sort.Strings(next)
		for _, dependent := range next {
			indegree[dependent]--
			if indegree[dependent] == 0 {
				queue = append(queue, dependent)
			}
		}
	}
	if len(order) < len(mod.Packages) {
		var rest []string
		for path, n := range indegree {
			if n > 0 {
				rest = append(rest, path)
			}
		}
		sort.Strings(rest)
		order = append(order, rest...)
	}

	imp := &moduleImporter{
		modPath: mod.Path,
		local:   make(map[string]*types.Package, len(mod.Packages)),
		std:     importer.ForCompiler(mod.Fset, "source", nil),
	}
	for _, path := range order {
		pkg := byPath[path]
		checkPackage(mod.Fset, pkg, imp)
		imp.local[path] = pkg.Types
	}
}

// checkPackage runs go/types over one package with soft errors.
func checkPackage(fset *token.FileSet, pkg *Package, imp types.Importer) {
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	checked, err := conf.Check(pkg.ImportPath, fset, pkg.Files, info)
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	pkg.Types = checked
	pkg.Info = info
}

// CheckSource loads a single in-memory package from source strings — the
// fixture entry point the analyzer tests use. files maps file name to
// source. The package is type-checked with stdlib imports available. The
// module path is the first segment of importPath, so a fixture at
// "fixturemod/internal/sim" exercises path-restricted passes the same way
// the real module does.
func CheckSource(importPath string, files map[string]string) (*Module, *Package, error) {
	modPath := importPath
	if i := strings.Index(importPath, "/"); i >= 0 {
		modPath = importPath[:i]
	}
	mod := &Module{Path: modPath, Dir: "/fixture", Fset: token.NewFileSet()}
	pkg := &Package{ImportPath: importPath, RelDir: "."}
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		file, err := parser.ParseFile(mod.Fset, filepath.Join(mod.Dir, name), files[name], parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, fmt.Errorf("analysis: parse fixture %s: %w", name, err)
		}
		if pkg.Name == "" {
			pkg.Name = file.Name.Name
		}
		pkg.Files = append(pkg.Files, file)
		pkg.FileNames = append(pkg.FileNames, name)
	}
	if len(pkg.Files) == 0 {
		return nil, nil, fmt.Errorf("analysis: fixture %s has no files", importPath)
	}
	imp := &moduleImporter{
		modPath: "fixture-has-no-internal-imports",
		local:   map[string]*types.Package{},
		std:     importer.ForCompiler(mod.Fset, "source", nil),
	}
	checkPackage(mod.Fset, pkg, imp)
	mod.Packages = []*Package{pkg}
	return mod, pkg, nil
}

// CheckModuleSource loads a multi-package in-memory module — the fixture
// entry point for the interprocedural (call-graph) tests, which need calls
// that cross package boundaries. pkgs maps module-relative package dirs
// (e.g. "internal/sim", "util") to their files (name → source). Packages are
// type-checked in dependency order, so fixture packages may import each
// other through the given module path.
func CheckModuleSource(modPath string, pkgs map[string]map[string]string) (*Module, error) {
	mod := &Module{Path: modPath, Dir: "/fixture", Fset: token.NewFileSet()}
	byPath := make(map[string]*Package, len(pkgs))
	dirs := make([]string, 0, len(pkgs))
	for dir := range pkgs {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		importPath := modPath
		if dir != "." {
			importPath = modPath + "/" + dir
		}
		pkg := &Package{ImportPath: importPath, RelDir: dir}
		names := make([]string, 0, len(pkgs[dir]))
		for name := range pkgs[dir] {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			rel := name
			if dir != "." {
				rel = dir + "/" + name
			}
			file, err := parser.ParseFile(mod.Fset, filepath.Join(mod.Dir, filepath.FromSlash(rel)), pkgs[dir][name], parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("analysis: parse fixture %s: %w", rel, err)
			}
			if pkg.Name == "" {
				pkg.Name = file.Name.Name
			}
			pkg.Files = append(pkg.Files, file)
			pkg.FileNames = append(pkg.FileNames, rel)
		}
		if len(pkg.Files) == 0 {
			return nil, fmt.Errorf("analysis: fixture package %s has no files", dir)
		}
		byPath[importPath] = pkg
		mod.Packages = append(mod.Packages, pkg)
	}
	typeCheck(mod, byPath)
	return mod, nil
}
