package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// Exact equality on floating-point values is almost always a latent bug in
// statistical code: two mathematically equal quantities computed along
// different paths rarely compare equal bit-for-bit. The pass flags ==/!=
// where either operand has a floating-point type, with two exemptions:
//
//   - comparison against the exact constant zero — the project's sentinel
//     convention ("zero means default") and the "no traffic at all" checks
//     are bit-exact by construction;
//   - x != x — the portable NaN test.

func floatEqAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "floateq",
		Doc:  "forbids ==/!= on floating-point operands (except exact-zero sentinels and x != x NaN tests)",
	}
	a.Run = func(p *Pass) {
		info := p.Pkg.Info
		if info == nil {
			return
		}
		isFloat := func(e ast.Expr) bool {
			tv, ok := info.Types[e]
			if !ok || tv.Type == nil {
				return false
			}
			basic, ok := tv.Type.Underlying().(*types.Basic)
			return ok && basic.Info()&types.IsFloat != 0
		}
		isZeroConst := func(e ast.Expr) bool {
			tv, ok := info.Types[e]
			if !ok || tv.Value == nil {
				return false
			}
			return constant.Compare(tv.Value, token.EQL, constant.MakeInt64(0))
		}
		p.walkFiles(func(file *ast.File, relName string) {
			ast.Inspect(file, func(n ast.Node) bool {
				bin, isBin := n.(*ast.BinaryExpr)
				if !isBin || (bin.Op != token.EQL && bin.Op != token.NEQ) {
					return true
				}
				if !isFloat(bin.X) && !isFloat(bin.Y) {
					return true
				}
				if isZeroConst(bin.X) || isZeroConst(bin.Y) {
					return true
				}
				// x != x / x == x: the NaN idiom.
				if xi, ok := bin.X.(*ast.Ident); ok {
					if yi, ok := bin.Y.(*ast.Ident); ok && xi.Name == yi.Name {
						return true
					}
				}
				p.Reportf(bin.Pos(), "floating-point %s comparison is unreliable; compare with an explicit tolerance (or math.Abs(a-b) < eps)", bin.Op)
				return true
			})
		})
	}
	return a
}
