package analysis

import (
	"go/ast"
)

// The simulator's reproducibility contract (internal/sim doc comment) is
// that every stochastic choice flows from a seeded source: the engine's
// Rand() for simulation code, rand.New(rand.NewSource(seed)) for offline
// tooling. Package-level math/rand functions draw from the global,
// process-wide source, which silently couples runs together and breaks the
// "a run is a pure function of configuration and seed" guarantee, so any
// use outside the constructor allowlist is a finding.

// randConstructors are the math/rand selectors that build a seeded source
// rather than drawing from the global one.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	// Types and interfaces, not draws.
	"Rand":   true,
	"Source": true,
	"Zipf":   true,
}

func globalRandAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "globalrand",
		Doc:  "forbids the global math/rand source; randomness must come from a seeded *rand.Rand",
	}
	a.Run = func(p *Pass) {
		p.walkFiles(func(file *ast.File, relName string) {
			ast.Inspect(file, func(n ast.Node) bool {
				sel, isSel := n.(*ast.SelectorExpr)
				if !isSel {
					return true
				}
				pkgPath, name, ok := pkgSelector(p.Pkg, file, sel)
				if !ok || (pkgPath != "math/rand" && pkgPath != "math/rand/v2") || randConstructors[name] {
					return true
				}
				p.Reportf(sel.Pos(), "rand.%s draws from the global math/rand source; use the engine's Rand() or a rand.New(rand.NewSource(seed)) local to the run", name)
				return true
			})
		})
	}
	return a
}
