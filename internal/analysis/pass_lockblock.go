package analysis

// locked-blocking flags blocking operations performed while a sync.Mutex or
// sync.RWMutex is provably held: channel sends and receives, selects without
// a default, time.Sleep, and a curated set of blocking stdlib calls (os, io,
// net, net/http). Holding a lock across a block point serializes every other
// critical section behind I/O or scheduling latency — the exact failure mode
// the serve layer's tenant registry must avoid under ingest load.
//
// The analysis is intraprocedural and deliberately conservative: a mutex
// counts as held only between a syntactically visible x.Lock()/x.RLock() and
// the matching x.Unlock()/x.RUnlock() on the same straight-line path (branch
// bodies are analyzed with a copy of the held set). `defer x.Unlock()` keeps
// the lock held to the end of the function, which is the pattern the pass is
// most interested in. A `select` that carries a `default` clause is
// non-blocking and exempt — that is the sanctioned shed-under-pressure shape
// (see tenant.enqueueBatch). Function literals are separate schedules and are
// walked independently with an empty held set.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

type lockOp int

const (
	opNone lockOp = iota
	opLock
	opUnlock
)

// lockMethods maps types.Func.FullName() of the sync locking methods to
// their effect on the held set. Read locks block writers just the same.
var lockMethods = map[string]lockOp{
	"(*sync.Mutex).Lock":      opLock,
	"(*sync.Mutex).Unlock":    opUnlock,
	"(*sync.Mutex).TryLock":   opLock,
	"(*sync.RWMutex).Lock":    opLock,
	"(*sync.RWMutex).Unlock":  opUnlock,
	"(*sync.RWMutex).RLock":   opLock,
	"(*sync.RWMutex).RUnlock": opUnlock,
	"(*sync.RWMutex).TryLock": opLock,
}

// blockingStdlib names package-level stdlib calls that can block on I/O or
// the scheduler; keyed by import path then selector.
var blockingStdlib = map[string]map[string]bool{
	"time":     {"Sleep": true},
	"io":       {"Copy": true, "CopyN": true, "CopyBuffer": true, "ReadAll": true},
	"os":       {"ReadFile": true, "WriteFile": true, "Open": true, "Create": true, "OpenFile": true},
	"net":      {"Dial": true, "DialTimeout": true, "Listen": true},
	"net/http": {"Get": true, "Post": true, "PostForm": true, "Head": true},
}

type lockWalker struct {
	p    *Pass
	file *ast.File
}

// lockOpOf classifies a call as a Lock/Unlock on a concrete sync mutex,
// returning the receiver expression's text as the held-set key ("t.mu").
func (w *lockWalker) lockOpOf(call *ast.CallExpr) (string, lockOp) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || w.p.Pkg.Info == nil {
		return "", opNone
	}
	fn, ok := w.p.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", opNone
	}
	op, ok := lockMethods[fn.FullName()]
	if !ok {
		return "", opNone
	}
	return types.ExprString(sel.X), op
}

// heldName returns a deterministic representative of the held set, or "".
func heldName(held map[string]bool) string {
	if len(held) == 0 {
		return ""
	}
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys[0]
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func (w *lockWalker) flag(pos token.Pos, what, mutex string) {
	w.p.Reportf(pos, "%s while %s is held; move the blocking operation outside the critical section", what, mutex)
}

// exprs scans expressions (not statement bodies) for channel receives and
// blocking stdlib calls, skipping function literals.
func (w *lockWalker) exprs(held map[string]bool, list ...ast.Expr) {
	mutex := heldName(held)
	if mutex == "" {
		return
	}
	for _, e := range list {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					w.flag(n.Pos(), "channel receive", mutex)
				}
			case *ast.CallExpr:
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					if pkgPath, name, ok := pkgSelector(w.p.Pkg, w.file, sel); ok {
						if names, ok := blockingStdlib[pkgPath]; ok && names[name] {
							w.flag(n.Pos(), pkgPath+"."+name, mutex)
						}
					}
				}
			}
			return true
		})
	}
}

func (w *lockWalker) stmts(list []ast.Stmt, held map[string]bool) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

func (w *lockWalker) stmt(s ast.Stmt, held map[string]bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if key, op := w.lockOpOf(call); op != opNone {
				if op == opLock {
					held[key] = true
				} else {
					delete(held, key)
				}
				return
			}
		}
		w.exprs(held, s.X)
	case *ast.DeferStmt:
		// defer x.Unlock() holds the lock to function end: no held change,
		// every later statement is still inside the critical section.
		if _, op := w.lockOpOf(s.Call); op != opNone {
			return
		}
		w.exprs(held, s.Call.Args...)
	case *ast.GoStmt:
		// Argument expressions evaluate now; the spawned body does not.
		w.exprs(held, s.Call.Args...)
	case *ast.SendStmt:
		if mutex := heldName(held); mutex != "" {
			w.flag(s.Pos(), "channel send", mutex)
		}
		w.exprs(held, s.Chan, s.Value)
	case *ast.AssignStmt:
		w.exprs(held, append(append([]ast.Expr{}, s.Rhs...), s.Lhs...)...)
	case *ast.ReturnStmt:
		w.exprs(held, s.Results...)
	case *ast.IncDecStmt:
		w.exprs(held, s.X)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	case *ast.BlockStmt:
		w.stmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.exprs(held, s.Cond)
		w.stmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			w.stmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		inner := copyHeld(held)
		if s.Init != nil {
			w.stmt(s.Init, inner)
		}
		w.exprs(inner, s.Cond)
		w.stmts(s.Body.List, inner)
	case *ast.RangeStmt:
		// Ranging over a channel blocks per iteration.
		if mutex := heldName(held); mutex != "" && w.p.Pkg.Info != nil {
			if t := w.p.Pkg.Info.TypeOf(s.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					w.flag(s.Pos(), "range over channel", mutex)
				}
			}
		}
		w.exprs(held, s.X)
		w.stmts(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.exprs(held, s.Tag)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				inner := copyHeld(held)
				w.exprs(inner, cc.List...)
				w.stmts(cc.Body, inner)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if mutex := heldName(held); mutex != "" && !hasDefault {
			w.flag(s.Pos(), "select without a default clause", mutex)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.exprs(held, vs.Values...)
				}
			}
		}
	}
}

func lockedBlockingAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "locked-blocking",
		Doc:  "flags channel ops, selects without default, sleeps and blocking I/O while a sync.Mutex/RWMutex is held",
	}
	a.Run = func(p *Pass) {
		p.walkFiles(func(file *ast.File, relName string) {
			w := &lockWalker{p: p, file: file}
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				w.stmts(fd.Body.List, map[string]bool{})
				// Function literals run on their own schedule: walk each
				// with a fresh held set.
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						w.stmts(lit.Body.List, map[string]bool{})
					}
					return true
				})
			}
		})
	}
	return a
}
