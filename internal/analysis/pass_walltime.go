package analysis

import (
	"go/ast"
)

// Deterministic packages run on virtual time; a single wall-clock read makes
// a run irreproducible (and makes the degraded-telemetry and scalability
// timings untestable). Code that legitimately needs host timings receives a
// clock.Clock; time.Now lives only behind clock.Wall, under an explicit
// //vet:allow directive.

// wallRestricted lists the module-relative package prefixes that must stay
// wall-clock-free. The same list scopes the interprocedural flow passes
// (walltime-flow, rand-flow): these are the packages whose behavior must be
// a pure function of configuration and seed. cmd/ and examples/ stay outside
// the list — they are entry points that may read the clock — but the flow
// passes still protect against them laundering time back into this scope,
// because any *call* from a listed package into such a helper is flagged.
var wallRestricted = []string{
	"internal/sim",
	"internal/core",
	"internal/stats",
	"internal/metrics",
	"internal/telemetry",
	"internal/traces",
	"internal/eval",
	"internal/report",
	"internal/baselines",
	"internal/arena",
	"internal/chaos",
	"internal/load",
	"internal/apps",
	"internal/clock",
	"internal/parallel",
	"internal/stream",
	"internal/serve",
	"internal/webui",
}

// deterministicPkg reports whether pkg is in the wall-clock-restricted
// (deterministic) scope — shared by walltime and the flow passes.
func deterministicPkg(mod *Module, pkg *Package) bool {
	for _, prefix := range wallRestricted {
		if mod.pkgUnder(pkg, prefix) {
			return true
		}
	}
	return false
}

// wallSelectors are the time-package selectors that read or react to the
// host clock. Duration arithmetic and constants stay legal.
var wallSelectors = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"After":     true,
	"AfterFunc": true,
}

func wallTimeAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "walltime",
		Doc:  "forbids wall-clock reads (time.Now & friends) in deterministic packages; inject a clock.Clock",
	}
	a.Run = func(p *Pass) {
		if !deterministicPkg(p.Module, p.Pkg) {
			return
		}
		p.walkFiles(func(file *ast.File, relName string) {
			ast.Inspect(file, func(n ast.Node) bool {
				sel, isSel := n.(*ast.SelectorExpr)
				if !isSel {
					return true
				}
				pkgPath, name, ok := pkgSelector(p.Pkg, file, sel)
				if !ok || pkgPath != "time" || !wallSelectors[name] {
					return true
				}
				p.Reportf(sel.Pos(), "time.%s reads the wall clock in deterministic package %s; inject a clock.Clock (internal/clock) instead", name, p.Pkg.ImportPath)
				return true
			})
		})
	}
	return a
}
