package analysis

// CodeAnalyzers returns every source-level pass, in documentation order.
// Adding a pass means adding it here (and documenting it in
// docs/STATIC_ANALYSIS.md); names must be unique across both layers because
// they key directives, baseline entries and -passes selections.
func CodeAnalyzers() []*Analyzer {
	return []*Analyzer{
		globalRandAnalyzer(),
		wallTimeAnalyzer(),
		wallTimeFlowAnalyzer(),
		randFlowAnalyzer(),
		floatEqAnalyzer(),
		panicLibAnalyzer(),
		errcheckIOAnalyzer(),
		magicAlphaAnalyzer(),
		goroutineLeakAnalyzer(),
		unboundedSpawnAnalyzer(),
		lockedBlockingAnalyzer(),
	}
}

// DomainAnalyzers returns every catalog-level pass.
func DomainAnalyzers() []*DomainAnalyzer {
	return []*DomainAnalyzer{
		topologyAnalyzer(),
		metricClassAnalyzer(),
	}
}
