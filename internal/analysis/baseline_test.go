package analysis

import (
	"path/filepath"
	"testing"
)

func TestBaselineFilterSplitsFreshSuppressedStale(t *testing.T) {
	findings := []Finding{
		{Pass: "paniclib", File: "a.go", Line: 3, Message: "panic in library"},
		{Pass: "floateq", File: "b.go", Line: 7, Message: "float =="},
		{Pass: "floateq", File: "b.go", Line: 9, Message: "float =="}, // same key, different line
	}
	b := &Baseline{Findings: []BaselineEntry{
		{Pass: "paniclib", File: "a.go", Message: "panic in library"},
		{Pass: "floateq", File: "b.go", Message: "float =="},
		{Pass: "walltime", File: "gone.go", Message: "time.Now"}, // fixed long ago
	}}
	fresh, suppressed, stale := b.Filter(findings)
	// One floateq entry suppresses one of the two occurrences; the second
	// occurrence is a regression and must surface.
	if suppressed != 2 {
		t.Errorf("suppressed = %d, want 2", suppressed)
	}
	if len(fresh) != 1 || fresh[0].Line != 9 {
		t.Errorf("fresh = %+v, want the second floateq occurrence", fresh)
	}
	if len(stale) != 1 || stale[0].File != "gone.go" {
		t.Errorf("stale = %+v, want the walltime leftover", stale)
	}
}

func TestBaselineIsLineInsensitive(t *testing.T) {
	b := BaselineFromFindings([]Finding{{Pass: "p", File: "f.go", Line: 10, Col: 2, Message: "m"}})
	moved := []Finding{{Pass: "p", File: "f.go", Line: 99, Col: 5, Message: "m"}}
	fresh, suppressed, stale := b.Filter(moved)
	if len(fresh) != 0 || suppressed != 1 || len(stale) != 0 {
		t.Errorf("moved finding not suppressed: fresh=%v suppressed=%d stale=%v", fresh, suppressed, stale)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	want := BaselineFromFindings([]Finding{
		{Pass: "b", File: "y.go", Message: "two"},
		{Pass: "a", File: "x.go", Message: "one"},
	})
	if err := want.Write(path); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	if len(got.Findings) != 2 {
		t.Fatalf("round trip lost entries: %+v", got.Findings)
	}
	// BaselineFromFindings sorts; x.go before y.go.
	if got.Findings[0].File != "x.go" || got.Findings[1].File != "y.go" {
		t.Errorf("entries not sorted: %+v", got.Findings)
	}
}

func TestLoadBaselineMissingFileIsEmpty(t *testing.T) {
	b, err := LoadBaseline(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatalf("missing baseline should be empty, got error: %v", err)
	}
	if len(b.Findings) != 0 {
		t.Errorf("missing baseline has %d entries", len(b.Findings))
	}
}

func TestFindingPositionAndKey(t *testing.T) {
	f := Finding{Pass: "paniclib", File: "internal/sim/x.go", Line: 12, Col: 3, Message: "boom"}
	if got := f.Position(); got != "internal/sim/x.go:12:3" {
		t.Errorf("Position = %q", got)
	}
	domain := Finding{Pass: "topology", File: "internal/apps/catalog", Message: "cycle"}
	if got := domain.Position(); got != "internal/apps/catalog" {
		t.Errorf("positionless Position = %q", got)
	}
	if f.Key() == domain.Key() {
		t.Error("distinct findings share a key")
	}
	shifted := Finding{Pass: "paniclib", File: "internal/sim/x.go", Line: 99, Col: 1, Message: "boom"}
	if f.Key() != shifted.Key() {
		t.Error("key is not line-insensitive")
	}
}
