package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Library packages must return errors, not panic: the pipeline embeds the
// simulator and the learner in long-running services (webui, future
// ingestion paths) where a panic in a misconfigured topology takes down the
// process. Commands (package main) may panic, and Must*-prefixed helpers
// keep the familiar stdlib convention (regexp.MustCompile) — they exist for
// static initialization and tests, and the satellite convention is that
// production code never calls them.

func panicLibAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "paniclib",
		Doc:  "forbids panic() in library packages (commands and Must* helpers exempt); return errors instead",
	}
	a.Run = func(p *Pass) {
		if p.Pkg.Name == "main" {
			return
		}
		p.walkFiles(func(file *ast.File, relName string) {
			walkWithFuncs(file, func(n ast.Node, enclosing string) {
				call, isCall := n.(*ast.CallExpr)
				if !isCall {
					return
				}
				ident, isIdent := call.Fun.(*ast.Ident)
				if !isIdent || ident.Name != "panic" {
					return
				}
				// Confirm it is the builtin, not a shadowing local.
				if p.Pkg.Info != nil {
					if obj, ok := p.Pkg.Info.Uses[ident]; ok {
						if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
							return
						}
					}
				}
				if strings.HasPrefix(enclosing, "Must") {
					return
				}
				p.Reportf(call.Pos(), "panic in library package %s (func %s); return an error instead, or move the helper behind a Must* name", p.Pkg.ImportPath, enclosing)
			})
		})
	}
	return a
}
