package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Snapshot and model persistence is the contract between training and
// localization: a silently failed WriteJSON corrupts the artifact the next
// stage trusts. The pass flags two shapes of discarded I/O errors:
//
//   - a statement that calls an I/O-shaped function (Write*/Read*/Save*/
//     Load*/Encode*/Decode*/Close/Flush/Sync) returning an error and drops
//     the result on the floor;
//   - `defer f.Close()` where f came from os.Create/os.OpenFile — the close
//     flushes buffered writes, so its error is the write error.
//
// Explicitly assigning to underscore (`_ = w.Close()`) stays legal: it is a
// visible, reviewable acknowledgment. In-memory writers that cannot fail
// (strings.Builder, bytes.Buffer) are exempt.

var errcheckPrefixes = []string{"Write", "Read", "Save", "Load", "Encode", "Decode"}
var errcheckExact = map[string]bool{"Close": true, "Flush": true, "Sync": true}

// ioShaped reports whether a callee name looks like persistence I/O.
func ioShaped(name string) bool {
	if errcheckExact[name] {
		return true
	}
	for _, prefix := range errcheckPrefixes {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

func errcheckIOAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "errcheck-io",
		Doc:  "forbids discarding errors from snapshot/model I/O calls (incl. deferred Close of created files)",
	}
	a.Run = func(p *Pass) {
		info := p.Pkg.Info
		if info == nil {
			return
		}
		returnsError := func(call *ast.CallExpr) bool {
			tv, ok := info.Types[call]
			if !ok || tv.Type == nil {
				return false
			}
			switch t := tv.Type.(type) {
			case *types.Tuple:
				return t.Len() > 0 && isErrorType(t.At(t.Len()-1).Type())
			default:
				return isErrorType(t)
			}
		}
		calleeName := func(call *ast.CallExpr) (string, ast.Expr) {
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				return fun.Name, nil
			case *ast.SelectorExpr:
				return fun.Sel.Name, fun.X
			}
			return "", nil
		}
		infallibleWriter := func(recv ast.Expr) bool {
			if recv == nil {
				return false
			}
			tv, ok := info.Types[recv]
			if !ok || tv.Type == nil {
				return false
			}
			t := tv.Type
			if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
				t = ptr.Elem()
			}
			named, isNamed := t.(*types.Named)
			if !isNamed {
				return false
			}
			obj := named.Obj()
			if obj.Pkg() == nil {
				return false
			}
			full := obj.Pkg().Path() + "." + obj.Name()
			return full == "strings.Builder" || full == "bytes.Buffer"
		}

		p.walkFiles(func(file *ast.File, relName string) {
			// Shape 1: discarded I/O-shaped call results.
			ast.Inspect(file, func(n ast.Node) bool {
				stmt, isExpr := n.(*ast.ExprStmt)
				if !isExpr {
					return true
				}
				call, isCall := stmt.X.(*ast.CallExpr)
				if !isCall {
					return true
				}
				name, recv := calleeName(call)
				if name == "" || !ioShaped(name) || !returnsError(call) || infallibleWriter(recv) {
					return true
				}
				p.Reportf(call.Pos(), "error returned by %s is discarded; snapshot/model I/O failures must be checked (use `_ =` only with a reason)", name)
				return true
			})
			// Shape 2: defer Close on writable files.
			ast.Inspect(file, func(n ast.Node) bool {
				fn, isFunc := n.(*ast.FuncDecl)
				if !isFunc || fn.Body == nil {
					return true
				}
				created := map[types.Object]bool{}
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					assign, isAssign := n.(*ast.AssignStmt)
					if !isAssign || len(assign.Rhs) != 1 {
						return true
					}
					call, isCall := assign.Rhs[0].(*ast.CallExpr)
					if !isCall {
						return true
					}
					sel, isSel := call.Fun.(*ast.SelectorExpr)
					if !isSel {
						return true
					}
					pkgPath, name, ok := pkgSelector(p.Pkg, file, sel)
					if !ok || pkgPath != "os" || (name != "Create" && name != "OpenFile") {
						return true
					}
					if ident, isIdent := assign.Lhs[0].(*ast.Ident); isIdent {
						if obj := info.Defs[ident]; obj != nil {
							created[obj] = true
						} else if obj := info.Uses[ident]; obj != nil {
							created[obj] = true
						}
					}
					return true
				})
				if len(created) == 0 {
					return true
				}
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					deferStmt, isDefer := n.(*ast.DeferStmt)
					if !isDefer {
						return true
					}
					sel, isSel := deferStmt.Call.Fun.(*ast.SelectorExpr)
					if !isSel || sel.Sel.Name != "Close" {
						return true
					}
					ident, isIdent := sel.X.(*ast.Ident)
					if !isIdent {
						return true
					}
					if obj := info.Uses[ident]; obj != nil && created[obj] {
						p.Reportf(deferStmt.Pos(), "deferred Close discards the write error of created file %s; close explicitly and check the error", ident.Name)
					}
					return true
				})
				return true
			})
		})
	}
	return a
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() == nil && obj.Name() == "error"
}
