package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Snapshot is one collected dataset: for every metric M and service s, the
// series of window values m(s, t). It corresponds to the paper's D_0 (fault
// free), D_s (fault injected in s) and D (production) datasets.
type Snapshot struct {
	// Metrics lists metric names in evaluation order.
	Metrics []string `json:"metrics"`
	// Services lists the service universe S.
	Services []string `json:"services"`
	// Data maps metric -> service -> window-value series.
	Data map[string]map[string][]float64 `json:"data"`
}

// NewSnapshot allocates an empty snapshot over the given universe.
func NewSnapshot(metricNames, services []string) *Snapshot {
	s := &Snapshot{
		Metrics:  append([]string(nil), metricNames...),
		Services: append([]string(nil), services...),
		Data:     make(map[string]map[string][]float64, len(metricNames)),
	}
	for _, m := range s.Metrics {
		s.Data[m] = make(map[string][]float64, len(services))
	}
	return s
}

// Series returns the window-value series of metric m for service svc.
func (s *Snapshot) Series(m, svc string) ([]float64, error) {
	bySvc, ok := s.Data[m]
	if !ok {
		return nil, fmt.Errorf("metrics: snapshot has no metric %q", m)
	}
	series, ok := bySvc[svc]
	if !ok {
		return nil, fmt.Errorf("metrics: snapshot metric %q has no service %q", m, svc)
	}
	return series, nil
}

// SeriesOK returns the window-value series of metric m for service svc, and
// whether that (metric, service) pair is present. It is the lookup to use on
// possibly-degraded snapshots where a missing pair is data, not an error.
func (s *Snapshot) SeriesOK(m, svc string) ([]float64, bool) {
	bySvc, ok := s.Data[m]
	if !ok {
		return nil, false
	}
	series, ok := bySvc[svc]
	return series, ok
}

// Validate checks structural consistency: every metric has a series for
// every service, and within one metric all series have equal length.
func (s *Snapshot) Validate() error {
	if len(s.Metrics) == 0 {
		return fmt.Errorf("metrics: snapshot has no metrics")
	}
	if len(s.Services) == 0 {
		return fmt.Errorf("metrics: snapshot has no services")
	}
	for _, m := range s.Metrics {
		bySvc, ok := s.Data[m]
		if !ok {
			return fmt.Errorf("metrics: snapshot missing data for metric %q", m)
		}
		want := -1
		for _, svc := range s.Services {
			series, ok := bySvc[svc]
			if !ok {
				return fmt.Errorf("metrics: metric %q missing service %q", m, svc)
			}
			if want == -1 {
				want = len(series)
			} else if len(series) != want {
				return fmt.Errorf("metrics: metric %q service %q has %d windows, want %d",
					m, svc, len(series), want)
			}
		}
	}
	return nil
}

// ValidateTolerant checks a possibly-degraded snapshot: the universe must be
// declared, every stored series must belong to a declared (metric, service)
// pair, and every stored value must be finite. Unlike Validate it permits
// missing pairs and unequal series lengths — those are legitimate outcomes of
// lossy collection that the tolerant learner/localizer path handles.
func (s *Snapshot) ValidateTolerant() error {
	if len(s.Metrics) == 0 {
		return fmt.Errorf("metrics: snapshot has no metrics")
	}
	if len(s.Services) == 0 {
		return fmt.Errorf("metrics: snapshot has no services")
	}
	declaredM := make(map[string]bool, len(s.Metrics))
	for _, m := range s.Metrics {
		declaredM[m] = true
	}
	declaredS := make(map[string]bool, len(s.Services))
	for _, svc := range s.Services {
		declaredS[svc] = true
	}
	for m, bySvc := range s.Data {
		if !declaredM[m] {
			return fmt.Errorf("metrics: snapshot stores undeclared metric %q", m)
		}
		for svc, series := range bySvc {
			if !declaredS[svc] {
				return fmt.Errorf("metrics: metric %q stores undeclared service %q", m, svc)
			}
			for i, v := range series {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return fmt.Errorf("metrics: metric %q service %q has non-finite value %v at window %d", m, svc, v, i)
				}
			}
		}
	}
	return nil
}

// WindowCount returns the number of windows per series (0 for an empty
// snapshot). It assumes Validate passed.
func (s *Snapshot) WindowCount() int {
	for _, m := range s.Metrics {
		for _, svc := range s.Services {
			return len(s.Data[m][svc])
		}
	}
	return 0
}

// Clone deep-copies the snapshot.
func (s *Snapshot) Clone() *Snapshot {
	out := NewSnapshot(s.Metrics, s.Services)
	for m, bySvc := range s.Data {
		if _, ok := out.Data[m]; !ok {
			out.Data[m] = make(map[string][]float64, len(bySvc))
		}
		for svc, series := range bySvc {
			out.Data[m][svc] = append([]float64(nil), series...)
		}
	}
	return out
}

// Project returns a sub-snapshot restricted to the named metrics, sharing
// the underlying series (read-only use). It lets techniques that need only a
// subset of a jointly collected dataset (e.g. the error-log-only baseline)
// run against the exact same collection pass as everyone else.
func (s *Snapshot) Project(metricNames []string) (*Snapshot, error) {
	out := &Snapshot{
		Metrics:  append([]string(nil), metricNames...),
		Services: append([]string(nil), s.Services...),
		Data:     make(map[string]map[string][]float64, len(metricNames)),
	}
	for _, m := range metricNames {
		bySvc, ok := s.Data[m]
		if !ok {
			return nil, fmt.Errorf("metrics: project: snapshot has no metric %q", m)
		}
		out.Data[m] = bySvc
	}
	return out, nil
}

// SortedMetricNames returns the metric names sorted alphabetically, for
// deterministic report rendering.
func (s *Snapshot) SortedMetricNames() []string {
	out := append([]string(nil), s.Metrics...)
	sort.Strings(out)
	return out
}
