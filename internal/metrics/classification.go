package metrics

// Introspection hooks for the metric-classification linter
// (internal/analysis): the paper's derived-metric recipe (§V-A) only
// de-confounds load if every dependent metric is divided by an independent
// one, so the classification below is machine-checked rather than implied
// by metric names.

// Class labels a raw metric's role in the derived-metric recipe.
type Class string

const (
	// Independent metrics are externally driven (the load reaching the
	// service); they are legal divisors.
	Independent Class = "independent"
	// Dependent metrics are consequences of the independent drive; each
	// needs an independent divisor to be load-invariant.
	Dependent Class = "dependent"
)

// KnownRaw returns every raw (non-derived) metric the pipeline defines.
func KnownRaw() []Metric {
	return []Metric{MsgRate, ErrLogRate, CPU, RxPackets, TxPackets, ReqRate, Busy}
}

// Classify returns the canonical class of every raw metric. Packets and
// requests received are the external drive; everything a service does in
// response — logging, CPU, transmissions, slot occupancy — is dependent.
func Classify() map[string]Class {
	return map[string]Class{
		RxPackets.Name:  Independent,
		ReqRate.Name:    Independent,
		MsgRate.Name:    Dependent,
		ErrLogRate.Name: Dependent,
		CPU.Name:        Dependent,
		TxPackets.Name:  Dependent,
		Busy.Name:       Dependent,
	}
}
