// Package metrics defines the observability metrics of the pipeline: the raw
// black-box metrics the paper collects (message rate from console logs, CPU
// seconds, network packets in/out) and the derived metrics it constructs to
// de-confound load (§V-A).
//
// The paper's derived-metric recipe classifies metrics into *independent*
// ones — externally driven, e.g. packets received, a proxy for requests sent
// to the service — and *dependent* ones — driven by the independent metrics,
// e.g. CPU. Each derived metric divides a dependent metric by an independent
// one, yielding per-request intensities that are invariant to the external
// load level.
package metrics

import (
	"fmt"
	"math"

	"causalfl/internal/sim"
	"causalfl/internal/telemetry"
)

// Metric extracts one scalar per hopping window from a service's aggregated
// counters.
type Metric struct {
	// Name identifies the metric in causal models and reports.
	Name string
	// Derived marks load-deconfounded ratio metrics.
	Derived bool
	// Numerator and Denominator record, for derived metrics, the raw
	// metrics the ratio was built from (Derive sets them). They let the
	// metric-classification linter check that every ratio divides a
	// dependent metric by an independent one without parsing names.
	Numerator   string
	Denominator string
	// Extract computes the metric value from one window's counter sums.
	Extract func(sim.Counters) float64
}

// Raw metrics (paper §V-A): msg rate comes from aggregated console logs, cpu
// from container_cpu_user_seconds_total, rx/tx packets from the cAdvisor
// network counters. ErrLogRate exists for the [23]-style baseline, which used
// only error logs.
var (
	MsgRate = Metric{Name: "msg_rate", Extract: func(c sim.Counters) float64 {
		return float64(c.LogMessages)
	}}
	ErrLogRate = Metric{Name: "error_log_rate", Extract: func(c sim.Counters) float64 {
		return float64(c.ErrorLogMessages)
	}}
	CPU = Metric{Name: "cpu", Extract: func(c sim.Counters) float64 {
		return c.CPUSeconds
	}}
	RxPackets = Metric{Name: "rx_packets", Extract: func(c sim.Counters) float64 {
		return float64(c.RxPackets)
	}}
	TxPackets = Metric{Name: "tx_packets", Extract: func(c sim.Counters) float64 {
		return float64(c.TxPackets)
	}}
	ReqRate = Metric{Name: "req_rate", Extract: func(c sim.Counters) float64 {
		return float64(c.RequestsReceived)
	}}
	// Busy is worker-slot occupancy (thread-pool utilization seconds). It
	// is not part of the paper's metric set; the latency-fault extension
	// uses it because latency faults consume no extra CPU yet hold slots
	// longer — upstream callers included, since synchronous calls block.
	Busy = Metric{Name: "busy", Extract: func(c sim.Counters) float64 {
		return c.BusySeconds
	}}
)

// Derive builds the paper's derived metric dep ⊘ indep ("average dependent
// per unit of independent", e.g. logs per received packet). Windows where the
// independent metric is zero yield zero: a service that receives nothing and
// does nothing has zero intensity, which keeps omission faults visible.
func Derive(dep, indep Metric) Metric {
	return Metric{
		Name:        dep.Name + "_per_" + indep.Name,
		Derived:     true,
		Numerator:   dep.Name,
		Denominator: indep.Name,
		Extract: func(c sim.Counters) float64 {
			d := dep.Extract(c)
			i := indep.Extract(c)
			if i == 0 {
				return 0
			}
			return d / i
		},
	}
}

// Standard metric sets.
//
// RawAll is the full raw set; DerivedAll divides each dependent metric (msg
// rate, cpu, tx packets) by the independent rx-packets metric. These are the
// "all" columns of Table II; the single-metric sets are its other columns.
func RawAll() []Metric {
	return []Metric{MsgRate, CPU, RxPackets, TxPackets}
}

// DerivedAll returns every dependent⊘independent combination plus the
// independent metric itself normalized by elapsed collection (kept raw): the
// paper keeps using the anomaly signal of the independent metric implicitly
// through ratios going to zero, so the set is ratios only.
func DerivedAll() []Metric {
	return []Metric{
		Derive(MsgRate, RxPackets),
		Derive(CPU, RxPackets),
		Derive(TxPackets, RxPackets),
	}
}

// ExtendedDerived is DerivedAll plus the busy-per-request ratio, the metric
// set used by the latency-fault extension experiments.
func ExtendedDerived() []Metric {
	return append(DerivedAll(), Derive(Busy, RxPackets))
}

// Set names accepted by Preset. They correspond one-to-one with the columns
// of Table II plus the error-log-only set used by the [23] baseline and the
// extended set of the latency-fault experiments.
const (
	SetRawMsg     = "raw-msg"
	SetRawCPU     = "raw-cpu"
	SetRawAll     = "raw-all"
	SetDerivedMsg = "derived-msg"
	SetDerivedCPU = "derived-cpu"
	SetDerivedAll = "derived-all"
	SetErrLog     = "errlog"
	SetDerivedExt = "derived-ext"
)

// PresetNames lists every set name accepted by Preset, in Table II order.
func PresetNames() []string {
	return []string{
		SetRawMsg, SetRawCPU, SetRawAll,
		SetDerivedMsg, SetDerivedCPU, SetDerivedAll,
		SetErrLog, SetDerivedExt,
	}
}

// Preset returns a named metric set.
func Preset(name string) ([]Metric, error) {
	switch name {
	case SetRawMsg:
		return []Metric{MsgRate}, nil
	case SetRawCPU:
		return []Metric{CPU}, nil
	case SetRawAll:
		return RawAll(), nil
	case SetDerivedMsg:
		return []Metric{Derive(MsgRate, RxPackets)}, nil
	case SetDerivedCPU:
		return []Metric{Derive(CPU, RxPackets)}, nil
	case SetDerivedAll:
		return DerivedAll(), nil
	case SetErrLog:
		return []Metric{ErrLogRate}, nil
	case SetDerivedExt:
		return ExtendedDerived(), nil
	default:
		return nil, fmt.Errorf("metrics: unknown preset %q (known: %v)", name, PresetNames())
	}
}

// Names returns the metric names of a set, in order.
func Names(set []Metric) []string {
	out := make([]string, len(set))
	for i, m := range set {
		out[i] = m.Name
	}
	return out
}

// BuildSnapshot evaluates a metric set over per-service hopping windows,
// producing the dataset D(M, s) consumed by the causal learner and the
// localizer. services fixes the service universe and ordering; services with
// no windows get empty series.
func BuildSnapshot(windows map[string][]telemetry.Window, services []string, set []Metric) (*Snapshot, error) {
	if len(set) == 0 {
		return nil, fmt.Errorf("metrics: empty metric set")
	}
	if len(services) == 0 {
		return nil, fmt.Errorf("metrics: empty service list")
	}
	snap := NewSnapshot(Names(set), services)
	for _, m := range set {
		for _, svc := range services {
			ws := windows[svc]
			series := make([]float64, len(ws))
			for i, w := range ws {
				series[i] = m.Extract(w.Sum)
			}
			snap.Data[m.Name][svc] = series
		}
	}
	return snap, nil
}

// BuildSnapshotDegraded is BuildSnapshot for lossy collection: windows whose
// coverage falls below minCoverage yield NaN (a marker for Repair to impute
// or drop), and raw count metrics on partially covered windows are upscaled
// by 1/coverage so a window that saw 80% of its ticks still estimates the
// full-window count. Derived ratio metrics are left alone — numerator and
// denominator shrink by the same factor, so the ratio is already unbiased.
// minCoverage <= 0 selects 0.5. On fully covered windows the result is
// identical to BuildSnapshot.
func BuildSnapshotDegraded(windows map[string][]telemetry.Window, services []string, set []Metric, minCoverage float64) (*Snapshot, error) {
	if len(set) == 0 {
		return nil, fmt.Errorf("metrics: empty metric set")
	}
	if len(services) == 0 {
		return nil, fmt.Errorf("metrics: empty service list")
	}
	if minCoverage <= 0 {
		minCoverage = 0.5
	}
	snap := NewSnapshot(Names(set), services)
	for _, m := range set {
		for _, svc := range services {
			ws := windows[svc]
			series := make([]float64, len(ws))
			for i, w := range ws {
				cov := w.Coverage()
				switch {
				case cov < minCoverage:
					series[i] = math.NaN()
				case m.Derived || cov >= 1:
					series[i] = m.Extract(w.Sum)
				default:
					series[i] = m.Extract(w.Sum) / cov
				}
			}
			snap.Data[m.Name][svc] = series
		}
	}
	return snap, nil
}
