package metrics

import (
	"encoding/binary"
	"math"
	"reflect"
	"testing"
)

// degradedSnapshot builds a 2-metric × 2-service snapshot with a mix of
// clean, corrupted, and missing series.
func degradedSnapshot() *Snapshot {
	s := NewSnapshot([]string{"m1", "m2"}, []string{"a", "b"})
	s.Data["m1"]["a"] = []float64{1, 2, 3, 4, 5, 6}
	s.Data["m1"]["b"] = []float64{1, math.NaN(), 3, 4, math.Inf(1), 6}
	s.Data["m2"]["a"] = []float64{math.NaN(), math.NaN(), math.NaN(), math.NaN(), 5, 6}
	// m2/b is missing entirely.
	return s
}

func TestRepairCleanRoundTrip(t *testing.T) {
	s := NewSnapshot([]string{"m"}, []string{"a", "b"})
	s.Data["m"]["a"] = []float64{1, 2, 3, 4, 5}
	s.Data["m"]["b"] = []float64{5, 4, 3, 2, 1}
	out, rep := Sanitize(s)
	if rep.Degraded() {
		t.Fatalf("clean snapshot reported degraded: %s", rep)
	}
	if rep.Coverage() != 1 {
		t.Fatalf("clean coverage = %v, want 1", rep.Coverage())
	}
	if !reflect.DeepEqual(out.Data, s.Data) {
		t.Fatalf("clean repair changed data: %v vs %v", out.Data, s.Data)
	}
	// Must be a copy, not an alias.
	out.Data["m"]["a"][0] = 99
	if s.Data["m"]["a"][0] == 99 {
		t.Fatal("Repair aliased the input series")
	}
}

func TestRepairImputesLinear(t *testing.T) {
	s := NewSnapshot([]string{"m"}, []string{"a"})
	s.Data["m"]["a"] = []float64{math.NaN(), 2, math.NaN(), math.NaN(), 8, math.Inf(-1)}
	out, rep := Repair(s, RepairPolicy{Mode: RepairImpute, MinSeriesCoverage: 0.1, MinSeriesPoints: 2})
	got := out.Data["m"]["a"]
	// Leading edge copies 2; the interior run interpolates 2→8 across the
	// original neighbours (indices 1 and 4); the trailing edge copies 8.
	want := []float64{2, 2, 4, 6, 8, 8}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("imputed series = %v, want %v", got, want)
	}
	if rep.ScrubbedPoints != 4 || rep.ImputedPoints != 4 || rep.DroppedPoints != 0 {
		t.Fatalf("report = %s, want 4 scrubbed / 4 imputed / 0 dropped", rep)
	}
	if err := out.ValidateTolerant(); err != nil {
		t.Fatalf("repaired snapshot invalid: %v", err)
	}
}

func TestRepairDropMode(t *testing.T) {
	s := NewSnapshot([]string{"m"}, []string{"a"})
	s.Data["m"]["a"] = []float64{1, math.NaN(), 3, math.Inf(1), 5, 7}
	out, rep := Repair(s, RepairPolicy{Mode: RepairDrop, MinSeriesCoverage: 0.1, MinSeriesPoints: 2})
	got := out.Data["m"]["a"]
	want := []float64{1, 3, 5, 7}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("dropped series = %v, want %v", got, want)
	}
	if rep.ScrubbedPoints != 2 || rep.DroppedPoints != 2 || rep.ImputedPoints != 0 {
		t.Fatalf("report = %s, want 2 scrubbed / 2 dropped / 0 imputed", rep)
	}
}

func TestRepairDropsHopelessPairs(t *testing.T) {
	out, rep := Sanitize(degradedSnapshot())
	// m2/a has 2/6 finite points: below both the 4-point floor and 0.5
	// coverage, so the pair goes away entirely.
	if _, ok := out.SeriesOK("m2", "a"); ok {
		t.Fatal("hopeless pair m2/a survived repair")
	}
	wantDropped := []DroppedPair{{Metric: "m2", Service: "a"}}
	if !reflect.DeepEqual(rep.DroppedPairs, wantDropped) {
		t.Fatalf("DroppedPairs = %v, want %v", rep.DroppedPairs, wantDropped)
	}
	if rep.MissingPairs != 1 {
		t.Fatalf("MissingPairs = %d, want 1 (m2/b)", rep.MissingPairs)
	}
	// m1/b had only 2 bad points out of 6: repaired, not dropped.
	series, ok := out.SeriesOK("m1", "b")
	if !ok || len(series) != 6 {
		t.Fatalf("m1/b = %v (ok=%v), want repaired length-6 series", series, ok)
	}
	if got := rep.MetricCoverage["m1"]; got != 1 {
		t.Errorf("m1 coverage = %v, want 1", got)
	}
	if got := rep.MetricCoverage["m2"]; got != 0 {
		t.Errorf("m2 coverage = %v, want 0", got)
	}
	if !rep.Degraded() {
		t.Error("report not flagged degraded")
	}
	if err := out.ValidateTolerant(); err != nil {
		t.Fatalf("repaired snapshot invalid: %v", err)
	}
}

func TestAssessDoesNotRepair(t *testing.T) {
	s := degradedSnapshot()
	rep := Assess(s)
	if rep.TotalPoints != 18 || rep.FinitePoints != 12 {
		t.Fatalf("assess counted %d/%d finite, want 12/18", rep.FinitePoints, rep.TotalPoints)
	}
	if rep.MissingPairs != 1 {
		t.Fatalf("MissingPairs = %d, want 1", rep.MissingPairs)
	}
	// The snapshot itself is untouched.
	if !math.IsNaN(s.Data["m1"]["b"][1]) {
		t.Fatal("Assess modified the snapshot")
	}
}

func TestAssessOverExternalUniverse(t *testing.T) {
	s := NewSnapshot([]string{"m1"}, []string{"a"})
	s.Data["m1"]["a"] = []float64{1, 2, 3}
	rep := AssessOver(s, []string{"m1", "m2"}, []string{"a", "b"})
	if rep.MissingPairs != 3 {
		t.Fatalf("MissingPairs = %d, want 3 (m1/b, m2/a, m2/b)", rep.MissingPairs)
	}
	if got := rep.MetricCoverage["m1"]; got != 0.5 {
		t.Errorf("m1 coverage = %v, want 0.5", got)
	}
	if got := rep.MetricCoverage["m2"]; got != 0 {
		t.Errorf("m2 coverage = %v, want 0", got)
	}
	// Nil snapshot: everything is missing, nothing panics.
	rep = AssessOver(nil, []string{"m"}, []string{"a"})
	if rep.MissingPairs != 1 || rep.Coverage() != 0 {
		t.Fatalf("nil snapshot: %s", rep)
	}
}

// FuzzSanitize checks the repair invariants on arbitrary byte-derived series:
// the sanitized snapshot always passes ValidateTolerant, and no series ever
// gains points.
func FuzzSanitize(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add([]byte{})
	f.Add([]byte{0x7f, 0xf8, 0, 0, 0, 0, 0, 0}) // NaN bit pattern
	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode the payload into two series of float64s (possibly NaN/Inf).
		var series [2][]float64
		for i := 0; i+8 <= len(data); i += 8 {
			v := math.Float64frombits(binary.LittleEndian.Uint64(data[i : i+8]))
			series[(i/8)%2] = append(series[(i/8)%2], v)
		}
		s := NewSnapshot([]string{"m"}, []string{"a", "b"})
		if len(series[0]) > 0 {
			s.Data["m"]["a"] = series[0]
		}
		if len(series[1]) > 0 {
			s.Data["m"]["b"] = series[1]
		}
		out, rep := Sanitize(s)
		if err := out.ValidateTolerant(); err != nil {
			t.Fatalf("sanitized snapshot invalid: %v (report %s)", err, rep)
		}
		for _, svc := range s.Services {
			in, inOK := s.SeriesOK("m", svc)
			got, gotOK := out.SeriesOK("m", svc)
			if gotOK && !inOK {
				t.Fatalf("service %s: series appeared from nowhere", svc)
			}
			if gotOK && len(got) > len(in) {
				t.Fatalf("service %s: series grew from %d to %d points", svc, len(in), len(got))
			}
		}
	})
}
