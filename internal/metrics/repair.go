package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// RepairMode selects how Repair treats non-finite points inside a series.
type RepairMode int

const (
	// RepairImpute replaces non-finite points by linear interpolation
	// between the nearest finite neighbours (edge points copy the nearest
	// finite value). It preserves series length, which keeps window
	// alignment across services intact.
	RepairImpute RepairMode = iota
	// RepairDrop removes non-finite points, shortening the series. Honest
	// about what was observed, at the cost of window alignment.
	RepairDrop
)

// String returns the mode name.
func (m RepairMode) String() string {
	switch m {
	case RepairImpute:
		return "impute"
	case RepairDrop:
		return "drop"
	default:
		return "unknown"
	}
}

// RepairPolicy controls Repair.
type RepairPolicy struct {
	// Mode selects imputation or dropping for non-finite points.
	Mode RepairMode
	// MinSeriesCoverage drops a (metric, service) pair whose fraction of
	// finite points falls below it. Zero selects the default (0.5).
	MinSeriesCoverage float64
	// MinSeriesPoints drops a pair with fewer finite points than this.
	// Zero selects the default (4, the minimum for a meaningful KS test).
	MinSeriesPoints int
}

// DefaultRepairPolicy imputes, requires half the points finite, and at least
// four finite points per series.
func DefaultRepairPolicy() RepairPolicy {
	return RepairPolicy{Mode: RepairImpute, MinSeriesCoverage: 0.5, MinSeriesPoints: 4}
}

func (p RepairPolicy) withDefaults() RepairPolicy {
	if p.MinSeriesCoverage <= 0 {
		p.MinSeriesCoverage = 0.5
	}
	if p.MinSeriesPoints <= 0 {
		p.MinSeriesPoints = 4
	}
	return p
}

// DroppedPair identifies a (metric, service) series removed by Repair.
type DroppedPair struct {
	Metric  string
	Service string
}

// DegradationReport quantifies how far a snapshot is from the complete
// metric×service grid the paper assumes, and what repair did about it.
type DegradationReport struct {
	// TotalPoints counts every stored window value before repair.
	TotalPoints int
	// FinitePoints counts stored values that were finite before repair.
	FinitePoints int
	// ScrubbedPoints counts non-finite values removed or replaced.
	ScrubbedPoints int
	// ImputedPoints counts values filled in by interpolation.
	ImputedPoints int
	// DroppedPoints counts values discarded (RepairDrop mode and dropped
	// pairs).
	DroppedPoints int
	// DroppedPairs lists series removed for insufficient coverage.
	DroppedPairs []DroppedPair
	// MissingPairs counts declared (metric, service) pairs with no series
	// at all (before repair).
	MissingPairs int
	// MetricCoverage maps each metric to the fraction of declared services
	// with a usable series after repair, in [0,1].
	MetricCoverage map[string]float64
}

// Degraded reports whether the snapshot deviates from a clean full grid.
func (r *DegradationReport) Degraded() bool {
	return r.ScrubbedPoints > 0 || r.DroppedPoints > 0 || len(r.DroppedPairs) > 0 || r.MissingPairs > 0
}

// Coverage returns the overall fraction of declared pairs that remain usable,
// averaging MetricCoverage over metrics (1 when no metrics are tracked).
func (r *DegradationReport) Coverage() float64 {
	if len(r.MetricCoverage) == 0 {
		return 1
	}
	sum := 0.0
	for _, c := range r.MetricCoverage {
		sum += c
	}
	return sum / float64(len(r.MetricCoverage))
}

// String renders a one-paragraph summary.
func (r *DegradationReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "degradation: %d/%d points finite, %d scrubbed, %d imputed, %d dropped, %d pairs dropped, %d pairs missing, coverage %.2f",
		r.FinitePoints, r.TotalPoints, r.ScrubbedPoints, r.ImputedPoints, r.DroppedPoints, len(r.DroppedPairs), r.MissingPairs, r.Coverage())
	if len(r.MetricCoverage) > 0 {
		names := make([]string, 0, len(r.MetricCoverage))
		for m := range r.MetricCoverage {
			names = append(names, m)
		}
		sort.Strings(names)
		b.WriteString(" [")
		for i, m := range names {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s=%.2f", m, r.MetricCoverage[m])
		}
		b.WriteString("]")
	}
	return b.String()
}

// Sanitize scrubs a snapshot under the default repair policy and returns the
// cleaned copy plus its degradation report. The input is not modified. The
// result always passes ValidateTolerant (assuming the universe is declared).
func Sanitize(s *Snapshot) (*Snapshot, *DegradationReport) {
	return Repair(s, DefaultRepairPolicy())
}

// Repair returns a cleaned copy of s: non-finite values are imputed or
// dropped per the policy, and (metric, service) pairs left with too little
// finite data are removed entirely. The input is not modified. A clean
// full-grid snapshot round-trips unchanged (beyond being copied).
func Repair(s *Snapshot, policy RepairPolicy) (*Snapshot, *DegradationReport) {
	policy = policy.withDefaults()
	out := NewSnapshot(s.Metrics, s.Services)
	rep := &DegradationReport{MetricCoverage: make(map[string]float64, len(s.Metrics))}

	for _, m := range s.Metrics {
		bySvc := s.Data[m]
		usable := 0
		for _, svc := range s.Services {
			series, ok := bySvc[svc]
			if !ok {
				rep.MissingPairs++
				continue
			}
			finite := 0
			for _, v := range series {
				if !math.IsNaN(v) && !math.IsInf(v, 0) {
					finite++
				}
			}
			rep.TotalPoints += len(series)
			rep.FinitePoints += finite
			coverage := 0.0
			if len(series) > 0 {
				coverage = float64(finite) / float64(len(series))
			}
			if finite < policy.MinSeriesPoints || coverage < policy.MinSeriesCoverage {
				rep.ScrubbedPoints += len(series) - finite
				rep.DroppedPoints += finite
				rep.DroppedPairs = append(rep.DroppedPairs, DroppedPair{Metric: m, Service: svc})
				continue
			}
			repaired, scrubbed, imputed, dropped := repairSeries(series, policy.Mode)
			rep.ScrubbedPoints += scrubbed
			rep.ImputedPoints += imputed
			rep.DroppedPoints += dropped
			out.Data[m][svc] = repaired
			usable++
		}
		if len(s.Services) > 0 {
			rep.MetricCoverage[m] = float64(usable) / float64(len(s.Services))
		}
	}
	sort.Slice(rep.DroppedPairs, func(i, j int) bool {
		a, b := rep.DroppedPairs[i], rep.DroppedPairs[j]
		if a.Metric != b.Metric {
			return a.Metric < b.Metric
		}
		return a.Service < b.Service
	})
	return out, rep
}

// repairSeries cleans one series, returning the repaired copy and the counts
// of scrubbed (non-finite encountered), imputed, and dropped points.
func repairSeries(series []float64, mode RepairMode) (out []float64, scrubbed, imputed, dropped int) {
	clean := true
	for _, v := range series {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			clean = false
			break
		}
	}
	if clean {
		return append([]float64(nil), series...), 0, 0, 0
	}
	if mode == RepairDrop {
		out = make([]float64, 0, len(series))
		for _, v := range series {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				scrubbed++
				dropped++
				continue
			}
			out = append(out, v)
		}
		return out, scrubbed, 0, dropped
	}
	// Impute: linear interpolation between the nearest finite neighbours;
	// runs touching an edge copy the nearest finite value.
	out = append([]float64(nil), series...)
	n := len(out)
	for i := 0; i < n; i++ {
		if !math.IsNaN(out[i]) && !math.IsInf(out[i], 0) {
			continue
		}
		scrubbed++
		// Find the nearest finite neighbours in the ORIGINAL series so a
		// run of bad points interpolates across the whole run rather than
		// chaining off freshly imputed values one step back.
		lo, hi := -1, -1
		for j := i - 1; j >= 0; j-- {
			if !math.IsNaN(series[j]) && !math.IsInf(series[j], 0) {
				lo = j
				break
			}
		}
		for j := i + 1; j < n; j++ {
			if !math.IsNaN(series[j]) && !math.IsInf(series[j], 0) {
				hi = j
				break
			}
		}
		switch {
		case lo >= 0 && hi >= 0:
			t := float64(i-lo) / float64(hi-lo)
			out[i] = series[lo] + t*(series[hi]-series[lo])
		case lo >= 0:
			out[i] = series[lo]
		case hi >= 0:
			out[i] = series[hi]
		default:
			// Unreachable when the caller enforces MinSeriesPoints >= 1,
			// but degrade to zero rather than leaving the NaN in place.
			out[i] = 0
		}
		imputed++
	}
	return out, scrubbed, imputed, 0
}

// Assess computes a DegradationReport for s without repairing it, measured
// against s's own declared universe.
func Assess(s *Snapshot) *DegradationReport {
	return AssessOver(s, s.Metrics, s.Services)
}

// AssessOver computes a DegradationReport for s measured against an external
// universe (e.g. the trained model's grid), counting pairs the universe
// declares but s lacks as missing.
func AssessOver(s *Snapshot, metricNames, services []string) *DegradationReport {
	rep := &DegradationReport{MetricCoverage: make(map[string]float64, len(metricNames))}
	for _, m := range metricNames {
		var bySvc map[string][]float64
		if s != nil {
			bySvc = s.Data[m]
		}
		usable := 0
		for _, svc := range services {
			series, ok := bySvc[svc]
			if !ok {
				rep.MissingPairs++
				continue
			}
			finite := 0
			for _, v := range series {
				if !math.IsNaN(v) && !math.IsInf(v, 0) {
					finite++
				}
			}
			rep.TotalPoints += len(series)
			rep.FinitePoints += finite
			rep.ScrubbedPoints += len(series) - finite
			if finite > 0 {
				usable++
			}
		}
		if len(services) > 0 {
			rep.MetricCoverage[m] = float64(usable) / float64(len(services))
		}
	}
	return rep
}
