package metrics

import (
	"encoding/json"
	"testing"
	"time"

	"causalfl/internal/sim"
	"causalfl/internal/telemetry"
)

func TestRawMetricExtraction(t *testing.T) {
	c := sim.Counters{
		LogMessages:      7,
		ErrorLogMessages: 3,
		CPUSeconds:       1.5,
		RxPackets:        100,
		TxPackets:        80,
		RequestsReceived: 50,
	}
	tests := []struct {
		metric Metric
		want   float64
	}{
		{MsgRate, 7},
		{ErrLogRate, 3},
		{CPU, 1.5},
		{RxPackets, 100},
		{TxPackets, 80},
		{ReqRate, 50},
	}
	for _, tt := range tests {
		if got := tt.metric.Extract(c); got != tt.want {
			t.Errorf("%s = %v, want %v", tt.metric.Name, got, tt.want)
		}
		if tt.metric.Derived {
			t.Errorf("%s marked derived", tt.metric.Name)
		}
	}
}

func TestDeriveRatioAndZeroDenominator(t *testing.T) {
	m := Derive(CPU, RxPackets)
	if m.Name != "cpu_per_rx_packets" {
		t.Errorf("derived name = %q", m.Name)
	}
	if !m.Derived {
		t.Error("derived metric not marked Derived")
	}
	if got := m.Extract(sim.Counters{CPUSeconds: 2, RxPackets: 4}); got != 0.5 {
		t.Errorf("cpu/rx = %v, want 0.5", got)
	}
	if got := m.Extract(sim.Counters{CPUSeconds: 2, RxPackets: 0}); got != 0 {
		t.Errorf("cpu/0 = %v, want 0 (idle service has zero intensity)", got)
	}
}

func TestDerivedMetricIsLoadInvariant(t *testing.T) {
	// The whole point of derived metrics: scaling the load leaves the
	// ratio unchanged.
	m := Derive(MsgRate, RxPackets)
	base := sim.Counters{LogMessages: 10, RxPackets: 100}
	loaded := sim.Counters{LogMessages: 40, RxPackets: 400}
	if m.Extract(base) != m.Extract(loaded) {
		t.Fatalf("derived metric changed under 4x load: %v vs %v",
			m.Extract(base), m.Extract(loaded))
	}
	// while the raw metric shifts:
	if MsgRate.Extract(base) == MsgRate.Extract(loaded) {
		t.Fatal("raw metric unexpectedly load invariant")
	}
}

func TestBusyMetricAndExtendedPreset(t *testing.T) {
	c := sim.Counters{BusySeconds: 2.5, RxPackets: 10}
	if got := Busy.Extract(c); got != 2.5 {
		t.Errorf("busy = %v", got)
	}
	ext, err := Preset(SetDerivedExt)
	if err != nil {
		t.Fatal(err)
	}
	if len(ext) != 4 {
		t.Fatalf("derived-ext has %d metrics, want 4", len(ext))
	}
	found := false
	for _, m := range ext {
		if m.Name == "busy_per_rx_packets" {
			found = true
			if got := m.Extract(c); got != 0.25 {
				t.Errorf("busy/rx = %v, want 0.25", got)
			}
		}
		if !m.Derived {
			t.Errorf("derived-ext contains raw metric %s", m.Name)
		}
	}
	if !found {
		t.Error("derived-ext lacks busy_per_rx_packets")
	}
}

func TestPresets(t *testing.T) {
	for _, name := range PresetNames() {
		set, err := Preset(name)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		if len(set) == 0 {
			t.Fatalf("Preset(%q) empty", name)
		}
	}
	if _, err := Preset("nope"); err == nil {
		t.Fatal("unknown preset accepted")
	}
	all, err := Preset(SetDerivedAll)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("derived-all has %d metrics, want 3", len(all))
	}
	for _, m := range all {
		if !m.Derived {
			t.Errorf("derived-all contains raw metric %s", m.Name)
		}
	}
	errSet, err := Preset(SetErrLog)
	if err != nil {
		t.Fatal(err)
	}
	if len(errSet) != 1 || errSet[0].Name != "error_log_rate" {
		t.Fatalf("errlog preset = %v", Names(errSet))
	}
}

func windowsFixture() map[string][]telemetry.Window {
	mk := func(reqs ...uint64) []telemetry.Window {
		out := make([]telemetry.Window, len(reqs))
		for i, r := range reqs {
			out[i] = telemetry.Window{
				Start: time.Duration(i) * time.Second,
				End:   time.Duration(i+1) * time.Second,
				Sum: sim.Counters{
					RxPackets:   r,
					LogMessages: r / 2,
					CPUSeconds:  float64(r) / 100,
				},
			}
		}
		return out
	}
	return map[string][]telemetry.Window{
		"a": mk(10, 20, 30),
		"b": mk(4, 4, 4),
	}
}

func TestBuildSnapshot(t *testing.T) {
	snap, err := BuildSnapshot(windowsFixture(), []string{"a", "b"}, RawAll())
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	series, err := snap.Series("rx_packets", "a")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 20, 30}
	for i := range want {
		if series[i] != want[i] {
			t.Fatalf("rx series = %v, want %v", series, want)
		}
	}
	if snap.WindowCount() != 3 {
		t.Fatalf("WindowCount = %d, want 3", snap.WindowCount())
	}
}

func TestBuildSnapshotMissingServiceGetsEmptySeries(t *testing.T) {
	snap, err := BuildSnapshot(windowsFixture(), []string{"a", "b", "ghost"}, []Metric{MsgRate})
	if err != nil {
		t.Fatal(err)
	}
	series, err := snap.Series("msg_rate", "ghost")
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 0 {
		t.Fatalf("ghost series has %d values, want 0", len(series))
	}
	// Validate must flag the length mismatch.
	if err := snap.Validate(); err == nil {
		t.Fatal("Validate accepted unequal series lengths")
	}
}

func TestBuildSnapshotValidation(t *testing.T) {
	if _, err := BuildSnapshot(windowsFixture(), []string{"a"}, nil); err == nil {
		t.Fatal("accepted empty metric set")
	}
	if _, err := BuildSnapshot(windowsFixture(), nil, RawAll()); err == nil {
		t.Fatal("accepted empty service list")
	}
}

func TestSnapshotSeriesErrors(t *testing.T) {
	snap := NewSnapshot([]string{"m"}, []string{"s"})
	if _, err := snap.Series("nope", "s"); err == nil {
		t.Fatal("Series accepted unknown metric")
	}
	if _, err := snap.Series("m", "nope"); err == nil {
		t.Fatal("Series accepted unknown service")
	}
}

func TestSnapshotCloneIsDeep(t *testing.T) {
	snap, err := BuildSnapshot(windowsFixture(), []string{"a", "b"}, []Metric{MsgRate})
	if err != nil {
		t.Fatal(err)
	}
	clone := snap.Clone()
	orig, _ := snap.Series("msg_rate", "a")
	cloned, _ := clone.Series("msg_rate", "a")
	cloned[0] = -999
	if orig[0] == -999 {
		t.Fatal("Clone shares underlying series")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	snap, err := BuildSnapshot(windowsFixture(), []string{"a", "b"}, RawAll())
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	a1, _ := snap.Series("cpu", "b")
	a2, _ := back.Series("cpu", "b")
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("JSON round trip altered data")
		}
	}
}

func TestSnapshotValidateCatchesMissingMetric(t *testing.T) {
	snap := NewSnapshot([]string{"m1"}, []string{"s1"})
	delete(snap.Data, "m1")
	if err := snap.Validate(); err == nil {
		t.Fatal("Validate accepted missing metric data")
	}
}

func TestNamesAndSortedMetricNames(t *testing.T) {
	set := []Metric{TxPackets, CPU}
	n := Names(set)
	if n[0] != "tx_packets" || n[1] != "cpu" {
		t.Fatalf("Names = %v", n)
	}
	snap := NewSnapshot([]string{"z", "a"}, []string{"s"})
	sorted := snap.SortedMetricNames()
	if sorted[0] != "a" || sorted[1] != "z" {
		t.Fatalf("SortedMetricNames = %v", sorted)
	}
	if snap.Metrics[0] != "z" {
		t.Fatal("SortedMetricNames mutated the snapshot ordering")
	}
}
