// Package report renders the complete evaluation — every table, figure,
// baseline comparison and extension experiment — as a single Markdown
// document. `causalfl report` is the one-command reproduction of
// EXPERIMENTS.md's raw data.
package report

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"causalfl/internal/apps/causalbench"
	"causalfl/internal/apps/robotshop"
	"causalfl/internal/eval"
)

// Section is one named experiment in the report.
type Section struct {
	// Title is the Markdown heading.
	Title string
	// Run produces the section body (the experiment's String output).
	Run func(eval.Options) (fmt.Stringer, error)
}

// Sections returns the full evaluation in presentation order.
func Sections() []Section {
	return []Section{
		{"Table I — accuracy and informativeness", func(o eval.Options) (fmt.Stringer, error) {
			return eval.RunTableI(o)
		}},
		{"Table II — metric sets under load drift", func(o eval.Options) (fmt.Stringer, error) {
			return eval.RunTableII(o)
		}},
		{"Fig. 1 — metric-dependent causal worlds", func(o eval.Options) (fmt.Stringer, error) {
			return eval.RunFig1(o)
		}},
		{"Fig. 2 — the load confounder", func(o eval.Options) (fmt.Stringer, error) {
			return eval.RunFig2(o)
		}},
		{"§VI-B — causal sets for an intervention on B", func(o eval.Options) (fmt.Stringer, error) {
			return eval.RunCausalSetsExample(o)
		}},
		{"§III-B — logging discipline changes the causal world", func(o eval.Options) (fmt.Stringer, error) {
			return eval.RunLoggingDiscipline(o)
		}},
		{"Baseline comparison — CausalBench", func(o eval.Options) (fmt.Stringer, error) {
			return eval.RunBaselineComparison(o, causalbench.Build, causalbench.Name)
		}},
		{"Baseline comparison — Robot-shop", func(o eval.Options) (fmt.Stringer, error) {
			return eval.RunBaselineComparison(o, robotshop.Build, robotshop.Name)
		}},
		{"Extension — fault-type generalization", func(o eval.Options) (fmt.Stringer, error) {
			return eval.RunFaultTypeExtension(o)
		}},
		{"Extension — concurrent faults", func(o eval.Options) (fmt.Stringer, error) {
			return eval.RunMultiFaultExtension(o)
		}},
		{"Extension — tracing comparison", func(o eval.Options) (fmt.Stringer, error) {
			return eval.RunTraceComparison(o)
		}},
		{"Extension — nonstationary load", func(o eval.Options) (fmt.Stringer, error) {
			return eval.RunNonstationaryExtension(o)
		}},
		{"Extension — noisy-neighbor interference", func(o eval.Options) (fmt.Stringer, error) {
			return eval.RunInterferenceExtension(o)
		}},
		{"Extension — contaminated baseline", func(o eval.Options) (fmt.Stringer, error) {
			return eval.RunContaminationExtension(o)
		}},
		{"Extension — training budget", func(o eval.Options) (fmt.Stringer, error) {
			return eval.RunBudgetExtension(o)
		}},
		{"Extension — scalability", func(o eval.Options) (fmt.Stringer, error) {
			return eval.RunScalabilityExtension(o)
		}},
		{"Extension — degraded telemetry (CausalBench)", func(o eval.Options) (fmt.Stringer, error) {
			return eval.RunDegradationSweep(o, causalbench.Build, causalbench.Name, nil)
		}},
		{"Extension — degraded telemetry (Robot-shop)", func(o eval.Options) (fmt.Stringer, error) {
			return eval.RunDegradationSweep(o, robotshop.Build, robotshop.Name, nil)
		}},
	}
}

// Generate runs every section and writes the Markdown document. Sections are
// independent deterministic simulations, so they execute concurrently (one
// worker per core, bounded) and are written in presentation order; the
// output is byte-identical to a sequential run. Section failures abort: a
// partial evaluation is worse than a loud error.
func Generate(o eval.Options, w io.Writer) error {
	mode := "paper-length (10-minute collection periods)"
	if o.Quick {
		mode = "abbreviated (2.5-minute collection periods)"
	}
	if _, err := fmt.Fprintf(w, "# causalfl evaluation report\n\nMode: %s. Seed: %d.\n", mode, effectiveSeed(o)); err != nil {
		return fmt.Errorf("report: %w", err)
	}

	sections := Sections()
	type outcome struct {
		result fmt.Stringer
		wall   time.Duration
		err    error
	}
	outcomes := make([]outcome, len(sections))

	workers := runtime.GOMAXPROCS(0)
	if workers > len(sections) {
		workers = len(sections)
	}
	clk := o.WallClock()
	jobs := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				start := clk.Now()
				result, err := sections[idx].Run(o)
				outcomes[idx] = outcome{result: result, wall: clk.Now().Sub(start).Round(time.Millisecond), err: err}
			}
		}()
	}
	for idx := range sections {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()

	for idx, section := range sections {
		oc := outcomes[idx]
		if oc.err != nil {
			return fmt.Errorf("report: %s: %w", section.Title, oc.err)
		}
		if _, err := fmt.Fprintf(w, "\n## %s\n\n```\n%s```\n\n(_%v_)\n", section.Title, oc.result.String(), oc.wall); err != nil {
			return fmt.Errorf("report: %s: %w", section.Title, err)
		}
	}
	return nil
}

// effectiveSeed mirrors Options.Apply's default.
func effectiveSeed(o eval.Options) int64 {
	if o.Seed == 0 {
		return 42
	}
	return o.Seed
}
