// Package report renders the complete evaluation — every table, figure,
// baseline comparison and extension experiment — as a single Markdown
// document. `causalfl report` is the one-command reproduction of
// EXPERIMENTS.md's raw data.
package report

import (
	"context"
	"fmt"
	"io"
	"time"

	"causalfl/internal/apps/causalbench"
	"causalfl/internal/apps/robotshop"
	"causalfl/internal/arena"
	"causalfl/internal/eval"
	"causalfl/internal/parallel"
)

// Section is one named experiment in the report.
type Section struct {
	// Title is the Markdown heading.
	Title string
	// Run produces the section body (the experiment's String output).
	Run func(context.Context, eval.Options) (fmt.Stringer, error)
}

// Sections returns the full evaluation in presentation order.
func Sections() []Section {
	return []Section{
		{"Table I — accuracy and informativeness", func(ctx context.Context, o eval.Options) (fmt.Stringer, error) {
			return eval.RunTableI(ctx, o)
		}},
		{"Table II — metric sets under load drift", func(ctx context.Context, o eval.Options) (fmt.Stringer, error) {
			return eval.RunTableII(ctx, o)
		}},
		{"Fig. 1 — metric-dependent causal worlds", func(ctx context.Context, o eval.Options) (fmt.Stringer, error) {
			return eval.RunFig1(ctx, o)
		}},
		{"Fig. 2 — the load confounder", func(ctx context.Context, o eval.Options) (fmt.Stringer, error) {
			return eval.RunFig2(ctx, o)
		}},
		{"§VI-B — causal sets for an intervention on B", func(ctx context.Context, o eval.Options) (fmt.Stringer, error) {
			return eval.RunCausalSetsExample(ctx, o)
		}},
		{"§III-B — logging discipline changes the causal world", func(ctx context.Context, o eval.Options) (fmt.Stringer, error) {
			return eval.RunLoggingDiscipline(ctx, o)
		}},
		{"Baseline comparison — CausalBench", func(ctx context.Context, o eval.Options) (fmt.Stringer, error) {
			return eval.RunBaselineComparison(ctx, o, causalbench.Build, causalbench.Name)
		}},
		{"Baseline comparison — Robot-shop", func(ctx context.Context, o eval.Options) (fmt.Stringer, error) {
			return eval.RunBaselineComparison(ctx, o, robotshop.Build, robotshop.Name)
		}},
		{"Extension — fault-type generalization", func(ctx context.Context, o eval.Options) (fmt.Stringer, error) {
			return eval.RunFaultTypeExtension(ctx, o)
		}},
		{"Extension — concurrent faults", func(ctx context.Context, o eval.Options) (fmt.Stringer, error) {
			return eval.RunMultiFaultExtension(ctx, o)
		}},
		{"Extension — tracing comparison", func(ctx context.Context, o eval.Options) (fmt.Stringer, error) {
			return eval.RunTraceComparison(ctx, o)
		}},
		{"Extension — nonstationary load", func(ctx context.Context, o eval.Options) (fmt.Stringer, error) {
			return eval.RunNonstationaryExtension(ctx, o)
		}},
		{"Extension — noisy-neighbor interference", func(ctx context.Context, o eval.Options) (fmt.Stringer, error) {
			return eval.RunInterferenceExtension(ctx, o)
		}},
		{"Extension — contaminated baseline", func(ctx context.Context, o eval.Options) (fmt.Stringer, error) {
			return eval.RunContaminationExtension(ctx, o)
		}},
		{"Extension — training budget", func(ctx context.Context, o eval.Options) (fmt.Stringer, error) {
			return eval.RunBudgetExtension(ctx, o)
		}},
		{"Extension — scalability", func(ctx context.Context, o eval.Options) (fmt.Stringer, error) {
			return eval.RunScalabilityExtension(ctx, o)
		}},
		{"Extension — degraded telemetry (CausalBench)", func(ctx context.Context, o eval.Options) (fmt.Stringer, error) {
			return eval.RunDegradationSweep(ctx, o, causalbench.Build, causalbench.Name, nil)
		}},
		{"Extension — degraded telemetry (Robot-shop)", func(ctx context.Context, o eval.Options) (fmt.Stringer, error) {
			return eval.RunDegradationSweep(ctx, o, robotshop.Build, robotshop.Name, nil)
		}},
		{"Extension — counterfactual repair", func(ctx context.Context, o eval.Options) (fmt.Stringer, error) {
			return eval.RunRepairExtension(ctx, o)
		}},
		{"Extension — baseline arena", func(ctx context.Context, o eval.Options) (fmt.Stringer, error) {
			// The arena keeps its virtual per-cell clock (Clock nil) so the
			// section body is byte-stable across regenerations; the section's
			// own wall timing below still reports the host cost.
			return arena.Run(ctx, arena.Options{
				Seed:    o.Seed,
				Quick:   o.Quick,
				Workers: o.Workers,
			})
		}},
	}
}

// Generate runs every section and writes the Markdown document. Sections are
// independent deterministic simulations, so they shard across the worker
// pool (bounded by o.Workers, or GOMAXPROCS when zero) and are written in
// presentation order; the output is byte-identical to a sequential run.
// Section failures abort: a partial evaluation is worse than a loud error.
func Generate(ctx context.Context, o eval.Options, w io.Writer) error {
	mode := "paper-length (10-minute collection periods)"
	if o.Quick {
		mode = "abbreviated (2.5-minute collection periods)"
	}
	if _, err := fmt.Fprintf(w, "# causalfl evaluation report\n\nMode: %s. Seed: %d.\n", mode, effectiveSeed(o)); err != nil {
		return fmt.Errorf("report: %w", err)
	}

	sections := Sections()
	type outcome struct {
		result fmt.Stringer
		wall   time.Duration
	}
	clk := o.WallClock()
	// Each section keeps its internal pools serial (Workers: 1): the
	// section fan-out already owns the pool, and nesting would oversubscribe.
	inner := o
	inner.Workers = 1
	outcomes, err := parallel.Map(ctx, o.Workers, len(sections), func(ctx context.Context, idx int) (outcome, error) {
		start := clk.Now()
		result, err := sections[idx].Run(ctx, inner)
		if err != nil {
			return outcome{}, fmt.Errorf("report: %s: %w", sections[idx].Title, err)
		}
		return outcome{result: result, wall: clk.Now().Sub(start).Round(time.Millisecond)}, nil
	})
	if err != nil {
		return err
	}

	for idx, section := range sections {
		oc := outcomes[idx]
		if _, err := fmt.Fprintf(w, "\n## %s\n\n```\n%s```\n\n(_%v_)\n", section.Title, oc.result.String(), oc.wall); err != nil {
			return fmt.Errorf("report: %s: %w", section.Title, err)
		}
	}
	return nil
}

// effectiveSeed mirrors Options.Apply's default.
func effectiveSeed(o eval.Options) int64 {
	if o.Seed == 0 {
		return 42
	}
	return o.Seed
}
