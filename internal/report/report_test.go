package report

import (
	"context"
	"strings"
	"testing"

	"causalfl/internal/eval"
)

func TestSectionsAreComplete(t *testing.T) {
	sections := Sections()
	if len(sections) < 12 {
		t.Fatalf("report has %d sections; every table, figure and extension must appear", len(sections))
	}
	seen := make(map[string]bool, len(sections))
	for _, s := range sections {
		if s.Title == "" || s.Run == nil {
			t.Fatalf("malformed section %+v", s)
		}
		if seen[s.Title] {
			t.Fatalf("duplicate section %q", s.Title)
		}
		seen[s.Title] = true
	}
	for _, want := range []string{"Table I", "Table II", "Fig. 1", "Fig. 2", "scalability"} {
		found := false
		for title := range seen {
			if strings.Contains(title, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no section mentions %q", want)
		}
	}
}

func TestGenerateQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full report generation skipped in -short mode")
	}
	var b strings.Builder
	if err := Generate(context.Background(), eval.Options{Seed: 42, Quick: true}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# causalfl evaluation report",
		"abbreviated",
		"## Table I",
		"## Table II",
		"accuracy",
		"causal relations depend",
		"Concurrent-fault extension",
		"Scalability on generated topologies",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Count(out, "## ") != len(Sections()) {
		t.Errorf("report has %d section headings, want %d", strings.Count(out, "## "), len(Sections()))
	}
}

func TestEffectiveSeed(t *testing.T) {
	if got := effectiveSeed(eval.Options{}); got != 42 {
		t.Errorf("default seed = %d", got)
	}
	if got := effectiveSeed(eval.Options{Seed: 7}); got != 7 {
		t.Errorf("explicit seed = %d", got)
	}
}
