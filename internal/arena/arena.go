// Package arena runs N fault-localization techniques head-to-head on
// identical collected datasets and produces a unified comparison report:
// accuracy (top-1 / top-3 / exact-set / set-containment), informativeness
// (candidate-set size), per-phase wall clock, and sample efficiency
// (accuracy when trained on 1/2, 1/4, 1/8 of the training windows), swept
// over both paper apps × load multipliers × telemetry-degradation
// fractions.
//
// Every technique in a cell sees byte-identical data: the training campaign
// is collected once per cell (always clean — the paper trains on healthy
// deployments) and the production test cases once per cell (degraded when
// the cell's loss fraction is nonzero), then each competitor trains and
// localizes on those shared snapshots. Cells fan out through
// internal/parallel with everything inside a cell serial, so output is
// byte-identical at any worker count. Wall timings come from an injectable
// clock.Clock: by default each cell gets its own clock.Fake (deterministic
// virtual timings, suitable for goldens), and callers opt into clock.Wall
// for real host timings.
package arena

import (
	"context"
	"fmt"
	"time"

	"causalfl/internal/apps"
	"causalfl/internal/apps/causalbench"
	"causalfl/internal/apps/robotshop"
	"causalfl/internal/baselines"
	"causalfl/internal/clock"
	"causalfl/internal/eval"
	"causalfl/internal/metrics"
	"causalfl/internal/parallel"
	"causalfl/internal/sim"
	"causalfl/internal/telemetry"
)

// AppSpec names one application under evaluation.
type AppSpec struct {
	Name  string
	Build apps.Builder
}

// PaperApps returns both applications of the paper's evaluation.
func PaperApps() []AppSpec {
	return []AppSpec{
		{causalbench.Name, causalbench.Build},
		{robotshop.Name, robotshop.Build},
	}
}

// Options configures an arena run. The zero value sweeps both paper apps
// over the default grid at seed 42 with deterministic virtual timings.
type Options struct {
	// Apps are the applications to evaluate (default: both paper apps).
	Apps []AppSpec
	// Multipliers are the production load multipliers (default {1, 4},
	// the paper's Table I settings).
	Multipliers []float64
	// Losses are the telemetry scrape-loss fractions applied to the test
	// campaign only — training stays clean (default {0, 0.2}).
	Losses []float64
	// Fractions are the training-window fractions of the sample-efficiency
	// sweep (default {1/2, 1/4, 1/8}).
	Fractions []float64
	// Seed drives all randomness (zero means 42).
	Seed int64
	// Quick shortens collection windows exactly like eval.Options.Quick.
	Quick bool
	// Workers bounds the cell fan-out (zero means GOMAXPROCS, one forces
	// the serial reference path). Results are identical at every setting.
	Workers int
	// Clock supplies wall timings. Nil means each cell gets a private
	// clock.Fake (deterministic virtual millisecond steps, byte-stable
	// output); inject clock.Wall for real host timings (not byte-stable).
	Clock clock.Clock
}

// withDefaults resolves the option defaults.
func (o Options) withDefaults() Options {
	if len(o.Apps) == 0 {
		o.Apps = PaperApps()
	}
	if len(o.Multipliers) == 0 {
		o.Multipliers = []float64{1, 4}
	}
	if len(o.Losses) == 0 {
		o.Losses = []float64{0, 0.2}
	}
	if len(o.Fractions) == 0 {
		o.Fractions = []float64{0.5, 0.25, 0.125}
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// clockMode names the timing source recorded in the report.
func (o Options) clockMode() string {
	if o.Clock == nil {
		return ClockVirtual
	}
	return ClockWall
}

// minTrainWindows is the floor the sample-efficiency truncation never cuts
// below: a two-sample test needs a handful of windows to say anything.
const minTrainWindows = 3

// roster builds one fresh instance of every competitor. Instances are never
// shared between cells or sample-efficiency retrains, so no state leaks
// across measurements. The order is the report's row order: the paper's
// method first, then the §VI-B ablation family, then the graph-based
// competitors, with the random floor last.
func roster(seed int64, edges []apps.Edge) []baselines.Technique {
	return []baselines.Technique{
		&baselines.Paper{MetricNames: metrics.Names(metrics.DerivedAll())},
		baselines.ErrLogOnly(),
		&baselines.SingleWorld{},
		&baselines.Observational{},
		&baselines.TopologyRCA{Edges: edges},
		&baselines.CausalRCA{},
		&baselines.PCGraph{},
		&baselines.RandomWalk{Edges: edges},
		&baselines.RandomGuess{Seed: seed},
	}
}

// RosterNames lists the competitor names in report row order.
func RosterNames() []string {
	techs := roster(0, []apps.Edge{{From: "a", To: "b"}})
	names := make([]string, len(techs))
	for i, t := range techs {
		names[i] = t.Name()
	}
	return names
}

// Run executes the full arena sweep.
func Run(ctx context.Context, o Options) (*Report, error) {
	o = o.withDefaults()
	for _, f := range o.Losses {
		if f < 0 || f > 1 {
			return nil, fmt.Errorf("arena: loss fraction %v outside [0,1]", f)
		}
	}
	for _, f := range o.Fractions {
		if f <= 0 || f > 1 {
			return nil, fmt.Errorf("arena: training fraction %v outside (0,1]", f)
		}
	}
	for _, m := range o.Multipliers {
		if m <= 0 {
			return nil, fmt.Errorf("arena: load multiplier %v not positive", m)
		}
	}

	report := &Report{
		Seed:      o.Seed,
		Quick:     o.Quick,
		ClockMode: o.clockMode(),
	}

	// One grid cell per (app, multiplier, loss); flatten for the pool.
	type cellSpec struct {
		app  int
		mult float64
		loss float64
	}
	var specs []cellSpec
	for a := range o.Apps {
		for _, m := range o.Multipliers {
			for _, l := range o.Losses {
				specs = append(specs, cellSpec{a, m, l})
			}
		}
	}

	cells, err := parallel.Map(ctx, o.Workers, len(specs), func(ctx context.Context, i int) (Cell, error) {
		s := specs[i]
		return runCell(ctx, o, o.Apps[s.app], s.mult, s.loss)
	})
	if err != nil {
		return nil, err
	}

	for a, app := range o.Apps {
		ar := AppReport{App: app.Name}
		for i, s := range specs {
			if s.app != a {
				continue
			}
			ar.Services = cells[i].services
			ar.Cells = append(ar.Cells, cells[i])
		}
		report.Apps = append(report.Apps, ar)
	}
	return report, nil
}

// cellConfig builds the campaign config for one cell: union metric set (so
// every competitor can project what it needs), production load at the
// cell's multiplier.
func cellConfig(o Options, app AppSpec, mult float64) eval.Config {
	union := append(metrics.RawAll(), metrics.DerivedAll()...)
	union = append(union, metrics.ErrLogRate)
	eo := eval.Options{Seed: o.Seed, Quick: o.Quick, Workers: 1}
	return eo.Apply(eval.Config{Build: app.Build, Metrics: union, TestMultiplier: mult})
}

// runCell collects one cell's shared datasets and measures every competitor
// on them. Everything here is serial: the pool parallelism lives at the
// cell level, and a serial cell with a private clock is what makes the
// timings deterministic.
func runCell(ctx context.Context, o Options, app AppSpec, mult, loss float64) (Cell, error) {
	clk := o.Clock
	if clk == nil {
		clk = &clock.Fake{Current: time.Unix(0, 0).UTC(), Step: time.Millisecond}
	}

	cfg := cellConfig(o, app, mult)
	data, err := eval.CollectTraining(ctx, cfg)
	if err != nil {
		return Cell{}, fmt.Errorf("arena: %s x%g: train collection: %w", app.Name, mult, err)
	}
	testCfg := cfg
	if loss > 0 {
		testCfg.Degraded = &eval.DegradedTelemetry{
			ScrapeLoss: loss,
			Retry:      telemetry.DefaultRetryPolicy(),
		}
	}
	cases, err := eval.CollectTests(ctx, testCfg)
	if err != nil {
		return Cell{}, fmt.Errorf("arena: %s x%g loss %g: test collection: %w", app.Name, mult, loss, err)
	}

	// The topology-driven competitors receive the static call graph, as a
	// service mesh would report it.
	built, err := app.Build(sim.NewEngine(0))
	if err != nil {
		return Cell{}, fmt.Errorf("arena: %s: build: %w", app.Name, err)
	}

	cell := Cell{
		Multiplier: mult,
		Loss:       loss,
		Cases:      len(cases),
		services:   len(data.Baseline.Services),
	}
	nServices := len(data.Baseline.Services)

	for _, tech := range roster(cfg.Seed, built.Edges) {
		row, err := measure(ctx, clk, tech, data, cases, nServices)
		if err != nil {
			return Cell{}, fmt.Errorf("arena: %s x%g loss %g: %s: %w", app.Name, mult, loss, tech.Name(), err)
		}
		// Sample efficiency: retrain a fresh instance per fraction on
		// truncated training windows and re-grade containment accuracy.
		// Untimed — the phase timings above always describe full training.
		for _, frac := range o.Fractions {
			fresh := roster(cfg.Seed, built.Edges)[rowIndex(tech.Name())]
			truncated := truncateTraining(data, frac)
			if err := fresh.Train(ctx, truncated.Baseline, truncated.Interventions); err != nil {
				return Cell{}, fmt.Errorf("arena: %s @%g: retrain %s: %w", app.Name, frac, tech.Name(), err)
			}
			correct := 0
			for _, tc := range cases {
				cands, err := fresh.Localize(ctx, tc.Production)
				if err != nil {
					return Cell{}, fmt.Errorf("arena: %s @%g: %s: %w", app.Name, frac, tech.Name(), err)
				}
				if containsService(cands, tc.Target) {
					correct++
				}
			}
			acc := 0.0
			if len(cases) > 0 {
				acc = float64(correct) / float64(len(cases))
			}
			row.Sample = append(row.Sample, SamplePoint{Fraction: frac, Accuracy: acc})
		}
		cell.Rows = append(cell.Rows, row)
	}
	return cell, nil
}

// rowIndex maps a technique name back to its roster slot (for building a
// fresh same-configured instance).
func rowIndex(name string) int {
	for i, n := range RosterNames() {
		if n == name {
			return i
		}
	}
	return -1
}

// measure trains one technique and grades it on every test case, timing the
// two phases with the cell clock.
func measure(ctx context.Context, clk clock.Clock, tech baselines.Technique, data *eval.TrainingData, cases []eval.TestCase, nServices int) (Row, error) {
	_, ranked := tech.(baselines.RankedTechnique)
	row := Row{Technique: tech.Name(), Ranked: ranked}

	start := clk.Now()
	if err := tech.Train(ctx, data.Baseline, data.Interventions); err != nil {
		return Row{}, fmt.Errorf("train: %w", err)
	}
	row.TrainWall = clk.Now().Sub(start)

	var top1, top3, exact, contain int
	var candSum, infSum float64
	start = clk.Now()
	for _, tc := range cases {
		cands, err := tech.Localize(ctx, tc.Production)
		if err != nil {
			return Row{}, fmt.Errorf("localize %s: %w", tc.Target, err)
		}
		order, err := baselines.RankedOrSets(ctx, tech, tc.Production)
		if err != nil {
			return Row{}, fmt.Errorf("rank %s: %w", tc.Target, err)
		}
		verdict := Verdict{
			Target:     tc.Target,
			Candidates: append([]string(nil), cands...),
			Correct:    containsService(cands, tc.Target),
		}
		for i, s := range order {
			if i >= 3 {
				break
			}
			verdict.Top = append(verdict.Top, s.Service)
		}
		if len(order) > 0 && order[0].Service == tc.Target {
			top1++
		}
		if containsService(verdict.Top, tc.Target) {
			top3++
		}
		if len(cands) == 1 && cands[0] == tc.Target {
			exact++
		}
		if verdict.Correct {
			contain++
		}
		candSum += float64(len(cands))
		if len(cands) == 0 {
			// Naming nobody excludes nobody: an empty set scores 0, the
			// same rule eval applies to abstentions.
			infSum += 0
		} else {
			infSum += eval.Informativeness(nServices, len(cands))
		}
		row.Verdicts = append(row.Verdicts, verdict)
	}
	row.LocalizeWall = clk.Now().Sub(start)

	if n := float64(len(cases)); n > 0 {
		row.Top1 = float64(top1) / n
		row.Top3 = float64(top3) / n
		row.Exact = float64(exact) / n
		row.Contain = float64(contain) / n
		row.MeanCandidates = candSum / n
		row.MeanInformativeness = infSum / n
	}
	return row, nil
}

// truncateTraining clips every training series (baseline and each
// interventional dataset) to the leading fraction of its windows,
// simulating a campaign that stopped collecting early.
func truncateTraining(data *eval.TrainingData, frac float64) *eval.TrainingData {
	out := &eval.TrainingData{
		Baseline:      truncateSnapshot(data.Baseline, frac),
		Interventions: make(map[string]*metrics.Snapshot, len(data.Interventions)),
	}
	for target, snap := range data.Interventions {
		out.Interventions[target] = truncateSnapshot(snap, frac)
	}
	return out
}

// truncateSnapshot clips each series to max(minTrainWindows, frac·len)
// leading samples.
func truncateSnapshot(snap *metrics.Snapshot, frac float64) *metrics.Snapshot {
	out := snap.Clone()
	for _, byService := range out.Data {
		for svc, series := range byService {
			n := int(frac*float64(len(series)) + 0.5)
			if n < minTrainWindows {
				n = minTrainWindows
			}
			if n < len(series) {
				byService[svc] = series[:n]
			}
		}
	}
	return out
}

// containsService reports membership in a candidate list.
func containsService(set []string, svc string) bool {
	for _, s := range set {
		if s == svc {
			return true
		}
	}
	return false
}
