package arena

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadArenaReport hammers the envelope parser with hostile input: it
// must reject or round-trip, never panic, and anything it accepts must be
// Validate-clean and re-encodable.
func FuzzReadArenaReport(f *testing.F) {
	f.Add("")
	f.Add("{}")
	f.Add(`{"kind":"causalfl-arena-report","version":1,"report":{}}`)
	f.Add(`{"kind":"causalfl-arena-report","version":1,"report":{"seed":42,"clock_mode":"virtual","apps":[{"app":"causalbench","services":9,"cells":[{"multiplier":1,"loss":0,"cases":1,"rows":[{"technique":"t","top1":1,"top3":1,"exact":1,"contain":1,"mean_candidates":1,"mean_informativeness":1,"train_wall":1000000,"localize_wall":1000000,"sample":[{"fraction":0.5,"accuracy":1}],"verdicts":[{"target":"a","candidates":["a"],"top":["a"],"correct":true}]}]}]}]}}`)
	f.Add(`{"kind":"causalfl-arena-report","version":2,"report":{"seed":1}}`)
	f.Add(`{"kind":"causalfl-arena-report","version":1,"report":{"seed":1,"clock_mode":"wall","apps":[{"app":"x","cells":[{"multiplier":-1,"rows":[{"technique":"t"}]}]}]}}`)
	f.Fuzz(func(t *testing.T, in string) {
		report, err := ReadArenaReport(strings.NewReader(in))
		if err != nil {
			return
		}
		if report == nil {
			t.Fatal("nil report without error")
		}
		if err := report.Validate(); err != nil {
			t.Fatalf("accepted report fails Validate: %v", err)
		}
		var buf bytes.Buffer
		if err := report.WriteJSON(&buf); err != nil {
			t.Fatalf("accepted report fails to re-encode: %v", err)
		}
		if _, err := ReadArenaReport(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("re-encoded report rejected: %v", err)
		}
	})
}
