package arena

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
	"time"
)

// Clock-mode labels recorded in the report.
const (
	// ClockVirtual marks deterministic per-cell fake timings (byte-stable,
	// golden-safe; magnitudes are virtual, not host costs).
	ClockVirtual = "virtual"
	// ClockWall marks real host timings (not byte-stable).
	ClockWall = "wall"
)

// Verdict is one graded test case for one technique.
type Verdict struct {
	// Target carried the injected fault.
	Target string `json:"target"`
	// Candidates is the technique's set answer.
	Candidates []string `json:"candidates"`
	// Top is the head of the technique's ranking (up to three entries).
	Top []string `json:"top,omitempty"`
	// Correct reports Target ∈ Candidates (the paper's set criterion).
	Correct bool `json:"correct"`
}

// SamplePoint is the containment accuracy after training on a leading
// fraction of the training windows.
type SamplePoint struct {
	Fraction float64 `json:"fraction"`
	Accuracy float64 `json:"accuracy"`
}

// Row is one technique's scores within a cell.
type Row struct {
	Technique string `json:"technique"`
	// Ranked reports whether the technique natively orders candidates;
	// set-valued techniques are graded on a uniform lifting of their set.
	Ranked bool `json:"ranked"`
	// Top1/Top3 grade the ranking; Exact and Contain grade the set answer
	// (Contain is the paper's accuracy criterion).
	Top1    float64 `json:"top1"`
	Top3    float64 `json:"top3"`
	Exact   float64 `json:"exact"`
	Contain float64 `json:"contain"`
	// MeanCandidates and MeanInformativeness grade how much the answer
	// narrows things down.
	MeanCandidates      float64 `json:"mean_candidates"`
	MeanInformativeness float64 `json:"mean_informativeness"`
	// TrainWall and LocalizeWall are the per-phase wall timings under the
	// report's clock mode.
	TrainWall    time.Duration `json:"train_wall"`
	LocalizeWall time.Duration `json:"localize_wall"`
	// Sample is the sample-efficiency curve (containment accuracy at each
	// training fraction).
	Sample []SamplePoint `json:"sample,omitempty"`
	// Verdicts are the per-case answers (the parity tests key on them).
	Verdicts []Verdict `json:"verdicts,omitempty"`
}

// Cell is one (load multiplier × loss fraction) grid point of an app.
type Cell struct {
	Multiplier float64 `json:"multiplier"`
	Loss       float64 `json:"loss"`
	Cases      int     `json:"cases"`
	Rows       []Row   `json:"rows"`

	services int
}

// AppReport groups an application's cells.
type AppReport struct {
	App      string `json:"app"`
	Services int    `json:"services"`
	Cells    []Cell `json:"cells"`
}

// Report is the full arena outcome.
type Report struct {
	Seed      int64       `json:"seed"`
	Quick     bool        `json:"quick"`
	ClockMode string      `json:"clock_mode"`
	Apps      []AppReport `json:"apps"`
}

// String renders the cross-method comparison for terminals.
func (r *Report) String() string {
	var b strings.Builder
	mode := "paper-length"
	if r.Quick {
		mode = "quick"
	}
	fmt.Fprintf(&b, "Baseline arena: head-to-head localization (seed %d, %s windows, %s clock)\n", r.Seed, mode, r.ClockMode)
	fmt.Fprintf(&b, "contain is the paper's set-accuracy criterion; top-1/top-3 grade each\n")
	fmt.Fprintf(&b, "technique's ranking; acc@f retrains on the leading fraction f of the\n")
	fmt.Fprintf(&b, "training windows. Training is always clean; loss degrades the test side.\n")
	for _, app := range r.Apps {
		fmt.Fprintf(&b, "\n=== %s (%d services) ===\n", app.App, app.Services)
		for _, cell := range app.Cells {
			fmt.Fprintf(&b, "\n-- load %gx, scrape loss %g%% (%d cases) --\n",
				cell.Multiplier, cell.Loss*100, cell.Cases)
			fmt.Fprintf(&b, "%-33s %-5s %-5s %-6s %-8s %-7s %-7s %-9s %-9s",
				"technique", "top1", "top3", "exact", "contain", "|cand|", "inform", "train", "localize")
			if len(cell.Rows) > 0 {
				for _, p := range cell.Rows[0].Sample {
					fmt.Fprintf(&b, " %-8s", fmt.Sprintf("acc@%s", trimFloat(p.Fraction)))
				}
			}
			fmt.Fprintf(&b, "\n")
			for _, row := range cell.Rows {
				name := row.Technique
				if !row.Ranked {
					name += " (set)"
				}
				fmt.Fprintf(&b, "%-33s %-5.2f %-5.2f %-6.2f %-8.2f %-7.1f %-7.2f %-9s %-9s",
					name, row.Top1, row.Top3, row.Exact, row.Contain,
					row.MeanCandidates, row.MeanInformativeness,
					fmtWall(row.TrainWall), fmtWall(row.LocalizeWall))
				for _, p := range row.Sample {
					fmt.Fprintf(&b, " %-8.2f", p.Accuracy)
				}
				fmt.Fprintf(&b, "\n")
			}
		}
	}
	return b.String()
}

// trimFloat renders a fraction compactly (0.5 → ".5", 0.125 → ".125").
func trimFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	return strings.TrimPrefix(s, "0")
}

// fmtWall renders a wall duration rounded to 0.1ms for stable tables.
func fmtWall(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
}

// Envelope versioning of the JSON form.
const (
	// ReportKind tags the JSON envelope.
	ReportKind = "causalfl-arena-report"
	// ReportVersion is bumped on breaking schema changes; ReadArenaReport
	// rejects versions it does not understand.
	ReportVersion = 1
)

// envelope is the on-disk JSON form.
type envelope struct {
	Kind    string  `json:"kind"`
	Version int     `json:"version"`
	Report  *Report `json:"report"`
}

// WriteJSON writes the report as a versioned, self-describing JSON envelope.
func (r *Report) WriteJSON(w io.Writer) error {
	if err := r.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(envelope{Kind: ReportKind, Version: ReportVersion, Report: r})
}

// ReadArenaReport parses and validates a JSON envelope produced by
// WriteJSON. Hostile input yields an error, never a panic.
func ReadArenaReport(rd io.Reader) (*Report, error) {
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	var env envelope
	if err := dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("arena: parse report: %w", err)
	}
	if env.Kind != ReportKind {
		return nil, fmt.Errorf("arena: not an arena report (kind %q)", env.Kind)
	}
	if env.Version != ReportVersion {
		return nil, fmt.Errorf("arena: unsupported report version %d (want %d)", env.Version, ReportVersion)
	}
	if env.Report == nil {
		return nil, fmt.Errorf("arena: envelope has no report")
	}
	if err := env.Report.Validate(); err != nil {
		return nil, err
	}
	return env.Report, nil
}

// Validate checks the report's internal consistency — the guard that keeps
// hostile or truncated JSON from flowing further.
func (r *Report) Validate() error {
	switch r.ClockMode {
	case ClockVirtual, ClockWall:
	default:
		return fmt.Errorf("arena: unknown clock mode %q", r.ClockMode)
	}
	if len(r.Apps) == 0 {
		return fmt.Errorf("arena: report has no apps")
	}
	for _, app := range r.Apps {
		if app.App == "" {
			return fmt.Errorf("arena: app entry has no name")
		}
		if app.Services < 0 {
			return fmt.Errorf("arena: %s: negative service count %d", app.App, app.Services)
		}
		if len(app.Cells) == 0 {
			return fmt.Errorf("arena: %s: no cells", app.App)
		}
		for _, cell := range app.Cells {
			if err := cell.validate(app.App); err != nil {
				return err
			}
		}
	}
	return nil
}

func (c *Cell) validate(app string) error {
	if c.Multiplier <= 0 || math.IsNaN(c.Multiplier) || math.IsInf(c.Multiplier, 0) {
		return fmt.Errorf("arena: %s: bad multiplier %v", app, c.Multiplier)
	}
	if c.Loss < 0 || c.Loss > 1 || math.IsNaN(c.Loss) {
		return fmt.Errorf("arena: %s: loss %v outside [0,1]", app, c.Loss)
	}
	if c.Cases < 0 {
		return fmt.Errorf("arena: %s: negative case count %d", app, c.Cases)
	}
	if len(c.Rows) == 0 {
		return fmt.Errorf("arena: %s x%g: no technique rows", app, c.Multiplier)
	}
	for _, row := range c.Rows {
		if row.Technique == "" {
			return fmt.Errorf("arena: %s x%g: row has no technique name", app, c.Multiplier)
		}
		for _, v := range []struct {
			name string
			val  float64
		}{
			{"top1", row.Top1}, {"top3", row.Top3}, {"exact", row.Exact},
			{"contain", row.Contain}, {"informativeness", row.MeanInformativeness},
		} {
			if v.val < 0 || v.val > 1 || math.IsNaN(v.val) {
				return fmt.Errorf("arena: %s: %s %s %v outside [0,1]", app, row.Technique, v.name, v.val)
			}
		}
		if row.MeanCandidates < 0 || math.IsNaN(row.MeanCandidates) || math.IsInf(row.MeanCandidates, 0) {
			return fmt.Errorf("arena: %s: %s mean candidates %v invalid", app, row.Technique, row.MeanCandidates)
		}
		if row.TrainWall < 0 || row.LocalizeWall < 0 {
			return fmt.Errorf("arena: %s: %s negative wall timing", app, row.Technique)
		}
		for _, p := range row.Sample {
			if p.Fraction <= 0 || p.Fraction > 1 || math.IsNaN(p.Fraction) {
				return fmt.Errorf("arena: %s: %s sample fraction %v outside (0,1]", app, row.Technique, p.Fraction)
			}
			if p.Accuracy < 0 || p.Accuracy > 1 || math.IsNaN(p.Accuracy) {
				return fmt.Errorf("arena: %s: %s sample accuracy %v outside [0,1]", app, row.Technique, p.Accuracy)
			}
		}
		for _, v := range row.Verdicts {
			if v.Target == "" {
				return fmt.Errorf("arena: %s: %s verdict has no target", app, row.Technique)
			}
			if len(v.Top) > 3 {
				return fmt.Errorf("arena: %s: %s verdict top has %d entries", app, row.Technique, len(v.Top))
			}
		}
	}
	return nil
}
