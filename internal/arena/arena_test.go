package arena

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"causalfl/internal/eval"
	"causalfl/internal/metrics"
)

var ctx = context.Background()

// quickOptions is the small deterministic grid most tests run: one app,
// both paper load multipliers, clean and degraded telemetry.
func quickOptions(workers int) Options {
	return Options{
		Apps:        []AppSpec{PaperApps()[0]},
		Multipliers: []float64{1, 4},
		Losses:      []float64{0, 0.2},
		Quick:       true,
		Workers:     workers,
	}
}

func TestRosterCoversRequiredFamilies(t *testing.T) {
	names := RosterNames()
	if len(names) < 7 {
		t.Fatalf("roster has %d techniques, need >= 7", len(names))
	}
	seen := make(map[string]bool)
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate technique name %q", n)
		}
		seen[n] = true
	}
	for _, want := range []string{
		"causalfl/intersection+parsimony", // the paper's method
		"errlog-only[23]",                 // §VI-B ablations
		"single-world",
		"causalrca-regression", // the three new graph-based competitors
		"pc-single-graph",
		"randomwalk-pagerank",
	} {
		if !seen[want] {
			t.Errorf("roster missing %q (have %v)", want, names)
		}
	}
}

func TestRunWorkersByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation campaign")
	}
	render := func(workers int) (string, []byte) {
		r, err := Run(ctx, quickOptions(workers))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return r.String(), buf.Bytes()
	}
	text1, json1 := render(1)
	text8, json8 := render(8)
	if text1 != text8 {
		t.Errorf("text report differs between workers 1 and 8:\n%s\n---\n%s", text1, text8)
	}
	if !bytes.Equal(json1, json8) {
		t.Errorf("JSON report differs between workers 1 and 8")
	}
}

func TestReportShapeAndValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation campaign")
	}
	o := Options{
		Apps:        []AppSpec{PaperApps()[0]},
		Multipliers: []float64{1},
		Losses:      []float64{0},
		Quick:       true,
		Workers:     1,
	}
	r, err := Run(ctx, o)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.ClockMode != ClockVirtual {
		t.Errorf("default clock mode = %q, want %q", r.ClockMode, ClockVirtual)
	}
	cell := r.Apps[0].Cells[0]
	if len(cell.Rows) != len(RosterNames()) {
		t.Fatalf("cell has %d rows, want %d", len(cell.Rows), len(RosterNames()))
	}
	for i, row := range cell.Rows {
		if row.Technique != RosterNames()[i] {
			t.Errorf("row %d = %q, want %q", i, row.Technique, RosterNames()[i])
		}
		if len(row.Verdicts) != cell.Cases {
			t.Errorf("%s: %d verdicts for %d cases", row.Technique, len(row.Verdicts), cell.Cases)
		}
		if len(row.Sample) != 3 {
			t.Errorf("%s: %d sample points, want 3", row.Technique, len(row.Sample))
		}
		if row.TrainWall <= 0 || row.LocalizeWall <= 0 {
			t.Errorf("%s: non-positive wall timings %v/%v", row.Technique, row.TrainWall, row.LocalizeWall)
		}
	}
	// The paper's method must win (or tie) the containment accuracy on its
	// own benchmark at the clean 1x cell.
	paper := cell.Rows[0]
	for _, row := range cell.Rows[1:] {
		if row.Contain > paper.Contain {
			t.Errorf("%s containment %.2f beats the paper method's %.2f", row.Technique, row.Contain, paper.Contain)
		}
	}
	// The rendered table mentions every technique.
	text := r.String()
	for _, name := range RosterNames() {
		if !strings.Contains(text, name) {
			t.Errorf("rendered report missing technique %q", name)
		}
	}
}

// TestArenaEvaluateParity pins the arena's Paper row to the numbers
// `causalfl evaluate` produces: same seeds, same per-scenario verdicts on
// both paper apps. The arena collects with the union metric set and the
// Paper technique projects to the derived set; because collection builds
// each metric's series independently from the same sampled windows,
// projection is exact and the verdicts must be bit-identical.
func TestArenaEvaluateParity(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation campaign")
	}
	type verdict struct {
		Target     string
		Candidates []string
		Correct    bool
	}
	for _, app := range PaperApps() {
		o := Options{
			Apps:        []AppSpec{app},
			Multipliers: []float64{1},
			Losses:      []float64{0},
			Quick:       true,
			Workers:     1,
		}
		r, err := Run(ctx, o)
		if err != nil {
			t.Fatalf("%s: arena: %v", app.Name, err)
		}
		row := r.Apps[0].Cells[0].Rows[0]
		if row.Technique != "causalfl/intersection+parsimony" {
			t.Fatalf("%s: first row is %q, not the paper method", app.Name, row.Technique)
		}
		var got []verdict
		for _, v := range row.Verdicts {
			got = append(got, verdict{v.Target, v.Candidates, v.Correct})
		}

		eo := eval.Options{Seed: 42, Quick: true, Workers: 1}
		cfg := eo.Apply(eval.Config{Build: app.Build, Metrics: metrics.DerivedAll(), TestMultiplier: 1})
		_, report, err := eval.Run(ctx, cfg)
		if err != nil {
			t.Fatalf("%s: eval.Run: %v", app.Name, err)
		}
		var want []verdict
		for _, out := range report.Outcomes {
			want = append(want, verdict{out.Target, out.Candidates, out.Correct})
		}

		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: arena Paper verdicts diverge from causalfl evaluate:\narena: %+v\neval:  %+v", app.Name, got, want)
		}
	}
}

func TestReadArenaReportRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation campaign")
	}
	o := Options{
		Apps:        []AppSpec{PaperApps()[0]},
		Multipliers: []float64{1},
		Losses:      []float64{0.3},
		Quick:       true,
		Workers:     0,
	}
	r, err := Run(ctx, o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadArenaReport(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := back.WriteJSON(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("JSON round trip is not byte-stable")
	}
}

func TestReadArenaReportRejectsHostileInput(t *testing.T) {
	for _, tc := range []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"not json", "not json"},
		{"wrong kind", `{"kind":"causalfl-repair-report","version":1,"report":{}}`},
		{"wrong version", `{"kind":"causalfl-arena-report","version":99,"report":{}}`},
		{"no report", `{"kind":"causalfl-arena-report","version":1}`},
		{"unknown field", `{"kind":"causalfl-arena-report","version":1,"bogus":3,"report":{}}`},
		{"empty report", `{"kind":"causalfl-arena-report","version":1,"report":{}}`},
		{"bad clock", `{"kind":"causalfl-arena-report","version":1,"report":{"seed":1,"clock_mode":"sundial","apps":[{"app":"a","services":2,"cells":[{"multiplier":1,"loss":0,"cases":1,"rows":[{"technique":"t"}]}]}]}}`},
		{"loss out of range", `{"kind":"causalfl-arena-report","version":1,"report":{"seed":1,"clock_mode":"virtual","apps":[{"app":"a","services":2,"cells":[{"multiplier":1,"loss":2,"cases":1,"rows":[{"technique":"t"}]}]}]}}`},
		{"rate out of range", `{"kind":"causalfl-arena-report","version":1,"report":{"seed":1,"clock_mode":"virtual","apps":[{"app":"a","services":2,"cells":[{"multiplier":1,"loss":0,"cases":1,"rows":[{"technique":"t","top1":7}]}]}]}}`},
	} {
		if _, err := ReadArenaReport(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestRunRejectsBadGrid(t *testing.T) {
	for _, tc := range []struct {
		name string
		o    Options
	}{
		{"negative loss", Options{Losses: []float64{-0.1}}},
		{"loss above one", Options{Losses: []float64{1.5}}},
		{"zero fraction", Options{Fractions: []float64{0}}},
		{"fraction above one", Options{Fractions: []float64{2}}},
		{"zero multiplier", Options{Multipliers: []float64{0}}},
	} {
		if _, err := Run(ctx, tc.o); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestTruncateSnapshotKeepsFloor(t *testing.T) {
	snap := metrics.NewSnapshot([]string{"m"}, []string{"a"})
	snap.Data["m"]["a"] = []float64{1, 2, 3, 4, 5, 6, 7, 8}
	got := truncateSnapshot(snap, 0.5)
	if n := len(got.Data["m"]["a"]); n != 4 {
		t.Errorf("half of 8 windows = %d, want 4", n)
	}
	got = truncateSnapshot(snap, 0.125)
	if n := len(got.Data["m"]["a"]); n != minTrainWindows {
		t.Errorf("floor = %d, want %d", n, minTrainWindows)
	}
	// The original is untouched.
	if len(snap.Data["m"]["a"]) != 8 {
		t.Error("truncation mutated its input")
	}
}
