package serve

import (
	"context"
	"errors"
	"fmt"
)

// Drain performs the graceful shutdown sequence: stop accepting ingest
// server-wide, let every tenant's consumer flush its queued batches, write
// each tenant's final snapshot, and return once all consumers have exited.
// ctx bounds the wait; an expired ctx abandons tenants still flushing (their
// last periodic snapshot remains on disk, so the loss is bounded by the
// snapshot cadence — the same guarantee a crash gets).
func (s *Server) Drain(ctx context.Context) error {
	ts := s.beginShutdown(false)
	var errs []error
	for _, t := range ts {
		select {
		case <-t.done:
		case <-ctx.Done():
			return fmt.Errorf("serve: drain interrupted: %w", ctx.Err())
		}
		if err := t.failedErr(); err != nil {
			errs = append(errs, fmt.Errorf("serve: tenant %q failed before drain: %w", t.name, err))
		}
	}
	return errors.Join(errs...)
}

// Kill is the crash simulation: stop everything immediately, abandon queued
// work, and write NO final snapshots — exactly what power loss leaves behind.
// The chaos suite boots a new server from the same store afterwards and
// asserts the recovery contract; production code should call Drain.
func (s *Server) Kill() {
	for _, t := range s.beginShutdown(true) {
		<-t.done
	}
}

// beginShutdown flips the server into draining mode and starts every
// tenant's shutdown; the tenant list is returned for the caller to wait on.
func (s *Server) beginShutdown(kill bool) []*tenant {
	s.mu.Lock()
	s.draining = true
	ts := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		ts = append(ts, t)
	}
	s.mu.Unlock()
	for _, t := range ts {
		t.beginShutdown(kill)
	}
	return ts
}

// Quiesce blocks until every batch enqueued for the tenant before the call
// has been fully processed — a deterministic flush point. Tests and the demo
// use it to read stats or verdicts at an exact stream position without
// sleeping; it is also the ordered building block behind forced snapshots.
func (s *Server) Quiesce(ctx context.Context, tenant string) error {
	s.mu.RLock()
	t := s.tenants[tenant]
	s.mu.RUnlock()
	if t == nil {
		return fmt.Errorf("serve: no tenant %q", tenant)
	}
	return t.barrier(ctx, false)
}

// Snapshot forces a snapshot of one tenant at its current queue position.
func (s *Server) Snapshot(ctx context.Context, tenant string) error {
	s.mu.RLock()
	t := s.tenants[tenant]
	s.mu.RUnlock()
	if t == nil {
		return fmt.Errorf("serve: no tenant %q", tenant)
	}
	return t.barrier(ctx, true)
}

// RunDrained runs a step loop with a graceful finish: step is called until
// it reports done or errors, and drain runs exactly once afterwards unless
// step itself failed — including when ctx is cancelled mid-loop (the SIGINT
// path in `causalfl watch`). It returns step's error, or drain's.
//
// The contract mirrors the server's own lifecycle: cancellation stops new
// work but never skips the flush, so a loop interrupted mid-hop still
// completes its current window and reports a final summary instead of
// vanishing silently.
func RunDrained(ctx context.Context, step func() (done bool, err error), drain func() error) error {
	for {
		select {
		case <-ctx.Done():
			return drain()
		default:
		}
		done, err := step()
		if err != nil {
			return err
		}
		if done {
			return drain()
		}
	}
}
