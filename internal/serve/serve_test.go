package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"causalfl/internal/core"
	"causalfl/internal/metrics"
	"causalfl/internal/sim"
	"causalfl/internal/stream"
	"causalfl/internal/telemetry"
)

// fixture is a compact degraded-stream scenario: three services scraped
// every 5s into 30s/15s windows under the single-metric "raw-cpu" preset,
// with a CPU fault in svc-b from tick 26, scrape gaps on svc-c and NaN
// corruption on svc-a — gaps, spans and non-finite values all crossing the
// serve wire and the snapshot boundary.
type fixture struct {
	model *core.Model
	// ticks[i] is production tick i+1: service -> samples.
	ticks []map[string][]telemetry.Sample
}

const (
	fixInterval = 5 * time.Second
	fixLength   = 30 * time.Second
	fixHop      = 15 * time.Second
	fixTicks    = 50
)

func buildFixture(t testing.TB) *fixture {
	t.Helper()
	services := []string{"svc-a", "svc-b", "svc-c"}
	set, err := metrics.Preset(metrics.SetRawCPU)
	if err != nil {
		t.Fatal(err)
	}

	cpu := func(si, tick int, faulty bool) sim.Counters {
		c := sim.Counters{CPUSeconds: 1.0 + 0.1*float64(si) + 0.01*float64((tick*11+si*5)%7)}
		if faulty {
			c.CPUSeconds *= 2.1
		}
		return c
	}

	baseSamples := make(map[string][]telemetry.Sample, len(services))
	for tick := 1; tick <= 40; tick++ {
		at := sim.Time(tick) * sim.Time(fixInterval)
		for si, svc := range services {
			baseSamples[svc] = append(baseSamples[svc], telemetry.Sample{
				At: at, Deltas: cpu(si, tick, false), Span: 1,
			})
		}
	}
	baseWindows, err := telemetry.WindowsByService(baseSamples, fixLength, fixHop)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := metrics.BuildSnapshot(baseWindows, services, set)
	if err != nil {
		t.Fatal(err)
	}
	sets := map[string]map[string][]string{}
	for _, m := range metrics.Names(set) {
		byTarget := map[string][]string{}
		for _, svc := range services {
			byTarget[svc] = []string{svc}
		}
		sets[m] = byTarget
	}
	model := &core.Model{
		Services:   services,
		Metrics:    metrics.Names(set),
		Targets:    append([]string(nil), services...),
		CausalSets: sets,
		Baseline:   baseline,
		Alpha:      0.05,
	}
	if err := model.Validate(); err != nil {
		t.Fatal(err)
	}

	var ticks []map[string][]telemetry.Sample
	gap := 0
	for tick := 41; tick <= 40+fixTicks; tick++ {
		at := sim.Time(tick) * sim.Time(fixInterval)
		one := make(map[string][]telemetry.Sample, len(services))
		for si, svc := range services {
			smp := telemetry.Sample{At: at, Deltas: cpu(si, tick, tick > 65 && si == 1), Span: 1}
			switch {
			// One long outage (ticks 44-50): the recovery sample's 8-tick
			// span cannot fit inside any 30s window, so it is dead-trimmed
			// and the affected windows report under-coverage — the exact
			// accounting the stats endpoint must surface.
			case si == 2 && (tick%9 == 0 || (tick >= 44 && tick <= 50)):
				smp = telemetry.Sample{At: at, Missing: true}
				gap++
			case si == 2:
				smp.Span = 1 + gap
				gap = 0
			case si == 0 && tick%13 == 0:
				smp.Deltas.CPUSeconds = math.NaN()
				smp.Corrupt = true
			}
			one[svc] = []telemetry.Sample{smp}
		}
		ticks = append(ticks, one)
	}
	return &fixture{model: model, ticks: ticks}
}

// tenantCfg is the fixture's standard tenant configuration.
func tenantCfg(workers int, fdr float64) TenantConfig {
	return TenantConfig{
		WindowLength: sim.Time(fixLength),
		WindowHop:    sim.Time(fixHop),
		Preset:       metrics.SetRawCPU,
		Window:       6,
		Workers:      workers,
		FDR:          fdr,
	}
}

// wantTimeline runs the fixture through a bare stream.Pipeline — the
// reference the serve path must match byte for byte.
func (fx *fixture) wantTimeline(t testing.TB, cfg TenantConfig) []*stream.Verdict {
	t.Helper()
	set, err := metrics.Preset(cfg.Preset)
	if err != nil {
		t.Fatal(err)
	}
	p, err := stream.NewPipeline(fx.model, cfg.streamOptions(set)...)
	if err != nil {
		t.Fatal(err)
	}
	var out []*stream.Verdict
	for i, tick := range fx.ticks {
		vs, err := p.Tick(context.Background(), tick)
		if err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
		out = append(out, vs...)
	}
	return out
}

// wireTicks converts fixture ticks to the ingest wire form.
func wireTicks(ticks []map[string][]telemetry.Sample) []map[string][]stream.SampleState {
	out := make([]map[string][]stream.SampleState, len(ticks))
	for i, tick := range ticks {
		w := make(map[string][]stream.SampleState, len(tick))
		for svc, samples := range tick {
			ss := make([]stream.SampleState, len(samples))
			for j, smp := range samples {
				ss[j] = stream.EncodeSample(smp)
			}
			w[svc] = ss
		}
		out[i] = w
	}
	return out
}

// client wraps an httptest server for terse request plumbing.
type client struct {
	t    testing.TB
	base string
	http *http.Client
}

func newTestServer(t testing.TB, dir string) (*Server, *client, *httptest.Server) {
	t.Helper()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, &client{t: t, base: hs.URL, http: hs.Client()}, hs
}

// do performs a request and decodes the JSON response into out (when
// non-nil), returning the status code.
func (c *client) do(method, path string, body, out any) int {
	c.t.Helper()
	var rd *bytes.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			c.t.Fatal(err)
		}
		rd = bytes.NewReader(blob)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			c.t.Fatalf("%s %s: decode response: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

func (c *client) create(name string, cfg TenantConfig, model *core.Model) int {
	return c.do(http.MethodPut, "/v1/tenants/"+name, createTenantRequest{Config: cfg, Model: model}, nil)
}

func (c *client) ingest(name string, ticks []map[string][]stream.SampleState) int {
	return c.do(http.MethodPost, "/v1/tenants/"+name+"/ingest", ingestRequest{Ticks: ticks}, nil)
}

func (c *client) verdicts(name string, since uint64) verdictsResponse {
	var out verdictsResponse
	if code := c.do(http.MethodGet, fmt.Sprintf("/v1/tenants/%s/verdicts?since=%d", name, since), nil, &out); code != http.StatusOK {
		c.t.Fatalf("verdicts: status %d", code)
	}
	return out
}

// mustJSON marshals for byte comparison.
func mustJSON(t testing.TB, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestServeAPI(t *testing.T) {
	fx := buildFixture(t)
	srv, c, _ := newTestServer(t, t.TempDir())
	cfg := tenantCfg(1, 0)

	if code := c.create(strings.Repeat("x", 65), cfg, fx.model); code != http.StatusBadRequest {
		t.Fatalf("overlong tenant name: status %d", code)
	}
	if code := c.create(".dotfile", cfg, fx.model); code != http.StatusBadRequest {
		t.Fatalf("dotfile tenant name: status %d", code)
	}
	if code := c.create("prod", cfg, fx.model); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if code := c.create("prod", cfg, fx.model); code != http.StatusConflict {
		t.Fatalf("duplicate create: status %d", code)
	}
	if code := c.do(http.MethodPut, "/v1/tenants/nomodel", map[string]any{"config": cfg}, nil); code != http.StatusBadRequest {
		t.Fatalf("create without model: status %d", code)
	}

	var listed struct {
		Tenants []string `json:"tenants"`
	}
	if code := c.do(http.MethodGet, "/v1/tenants", nil, &listed); code != http.StatusOK || len(listed.Tenants) != 1 || listed.Tenants[0] != "prod" {
		t.Fatalf("list: status %d, %v", code, listed.Tenants)
	}

	wire := wireTicks(fx.ticks)
	for i, tick := range wire {
		if code := c.ingest("prod", wire[i:i+1]); code != http.StatusAccepted {
			t.Fatalf("ingest tick %d: status %d", i, code)
		}
		_ = tick
	}
	// Hostile ingest shapes are rejected before they reach the queue.
	if code := c.ingest("prod", []map[string][]stream.SampleState{{"svc-zz": nil}}); code != http.StatusBadRequest {
		t.Fatalf("unknown service: status %d", code)
	}
	if code := c.ingest("prod", []map[string][]stream.SampleState{{"svc-a": {{At: -5}}}}); code != http.StatusBadRequest {
		t.Fatalf("negative stamp: status %d", code)
	}
	if code := c.ingest("prod", nil); code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d", code)
	}
	if code := c.ingest("ghost", wire[:1]); code != http.StatusNotFound {
		t.Fatalf("unknown tenant ingest: status %d", code)
	}

	if err := srv.Quiesce(context.Background(), "prod"); err != nil {
		t.Fatal(err)
	}
	want := fx.wantTimeline(t, cfg)
	got := c.verdicts("prod", 0)
	if len(got.Verdicts) != len(want) {
		t.Fatalf("served %d verdicts, want %d", len(got.Verdicts), len(want))
	}
	for i, sv := range got.Verdicts {
		if sv.Seq != uint64(i+1) {
			t.Fatalf("verdict %d has seq %d", i, sv.Seq)
		}
		if !bytes.Equal(mustJSON(t, sv.Verdict), mustJSON(t, want[i])) {
			t.Fatalf("verdict %d diverges from the bare pipeline", i)
		}
	}
	last := got.Verdicts[len(got.Verdicts)-1].Verdict
	if len(last.Confirmed) != 1 || last.Confirmed[0] != "svc-b" {
		t.Fatalf("final confirmation %v, want [svc-b]", last.Confirmed)
	}

	// Incremental consumption: since=next returns nothing new.
	again := c.verdicts("prod", got.Next)
	if len(again.Verdicts) != 0 || again.Next != got.Next {
		t.Fatalf("tail read returned %d verdicts, next %d", len(again.Verdicts), again.Next)
	}

	var st TenantStats
	if code := c.do(http.MethodGet, "/v1/tenants/prod/stats", nil, &st); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if st.Processed != uint64(len(fx.ticks)) || st.Seq != uint64(len(want)) {
		t.Fatalf("stats processed=%d seq=%d, want %d/%d", st.Processed, st.Seq, len(fx.ticks), len(want))
	}
	if st.Pipeline.Aggregator.Dead == 0 {
		t.Fatal("fixture gaps should produce dead-sample accounting")
	}

	if code := c.do(http.MethodPost, "/v1/tenants/prod/snapshot", nil, nil); code != http.StatusOK {
		t.Fatalf("forced snapshot: status %d", code)
	}
	if code := c.do(http.MethodDelete, "/v1/tenants/prod", nil, nil); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	if code := c.do(http.MethodDelete, "/v1/tenants/prod", nil, nil); code != http.StatusNotFound {
		t.Fatalf("double delete: status %d", code)
	}
	if names, err := srv.opts.Store.List(); err != nil || len(names) != 0 {
		t.Fatalf("store after delete: %v %v", names, err)
	}
}

// TestServeMethodHygiene pins the 405 contract: wrong-method requests get an
// Allow header, not a 404.
func TestServeMethodHygiene(t *testing.T) {
	_, c, hs := newTestServer(t, t.TempDir())
	resp, err := hs.Client().Post(hs.URL+"/v1/tenants", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/tenants: status %d", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); !strings.Contains(allow, http.MethodGet) {
		t.Fatalf("405 without a usable Allow header: %q", allow)
	}
	if code := c.do(http.MethodDelete, "/healthz", nil, nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE /healthz: status %d", code)
	}
}

// TestLongPollVerdicts checks the walltime-free long-poll: a wait=1 read
// parks until the next hop completes, then delivers it.
func TestLongPollVerdicts(t *testing.T) {
	fx := buildFixture(t)
	srv, c, _ := newTestServer(t, t.TempDir())
	if code := c.create("prod", tenantCfg(1, 0), fx.model); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	wire := wireTicks(fx.ticks)

	type pollResult struct {
		resp verdictsResponse
		code int
	}
	got := make(chan pollResult, 1)
	go func() {
		var out verdictsResponse
		code := c.do(http.MethodGet, "/v1/tenants/prod/verdicts?since=0&wait=1", nil, &out)
		got <- pollResult{out, code}
	}()

	// Feed ticks until the first hop completes; the poller must wake up.
	for i := range wire {
		if code := c.ingest("prod", wire[i:i+1]); code != http.StatusAccepted {
			t.Fatalf("ingest %d: status %d", i, code)
		}
		if err := srv.Quiesce(context.Background(), "prod"); err != nil {
			t.Fatal(err)
		}
		select {
		case r := <-got:
			if r.code != http.StatusOK || len(r.resp.Verdicts) == 0 {
				t.Fatalf("long-poll returned status %d with %d verdicts", r.code, len(r.resp.Verdicts))
			}
			return
		default:
		}
	}
	r := <-got
	if r.code != http.StatusOK || len(r.resp.Verdicts) == 0 {
		t.Fatalf("long-poll never delivered: status %d, %d verdicts", r.code, len(r.resp.Verdicts))
	}
}

// TestRunDrained pins the graceful-finish helper's contract.
func TestRunDrained(t *testing.T) {
	t.Run("drains on done", func(t *testing.T) {
		steps, drains := 0, 0
		err := RunDrained(context.Background(),
			func() (bool, error) { steps++; return steps == 3, nil },
			func() error { drains++; return nil })
		if err != nil || steps != 3 || drains != 1 {
			t.Fatalf("err=%v steps=%d drains=%d", err, steps, drains)
		}
	})
	t.Run("drains on cancel", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		steps, drains := 0, 0
		err := RunDrained(ctx,
			func() (bool, error) {
				steps++
				if steps == 2 {
					cancel()
				}
				return false, nil
			},
			func() error { drains++; return nil })
		if err != nil || steps != 2 || drains != 1 {
			t.Fatalf("err=%v steps=%d drains=%d", err, steps, drains)
		}
	})
	t.Run("step error skips drain", func(t *testing.T) {
		drains := 0
		boom := fmt.Errorf("boom")
		err := RunDrained(context.Background(),
			func() (bool, error) { return false, boom },
			func() error { drains++; return nil })
		if err != boom || drains != 0 {
			t.Fatalf("err=%v drains=%d", err, drains)
		}
	})
}
