package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"causalfl/internal/core"
	"causalfl/internal/metrics"
	"causalfl/internal/sim"
	"causalfl/internal/stream"
	"causalfl/internal/telemetry"
)

// Defaults for tenant serving knobs (zero values in TenantConfig select
// them).
const (
	DefaultQueueCap      = 64
	DefaultSnapshotEvery = 16
	DefaultVerdictLog    = 512
)

// maxSampleStamp bounds ingest timestamps (about 146 virtual years in
// nanoseconds). An honest virtual clock starts at zero; a stamp parked next
// to the int64 horizon would overflow the window arithmetic downstream.
const maxSampleStamp = sim.Time(1) << 62

// TenantConfig is a tenant's complete serializable configuration: window
// geometry, metric preset, localizer knobs and serving knobs. It is written
// into every snapshot, so a rebooted server reconstructs the pipeline under
// exactly the configuration the state was exported under — a requirement for
// byte-identical resumption, since the statistical config lives outside
// stream.PipelineState.
type TenantConfig struct {
	// WindowLength / WindowHop set the aggregation grid in nanoseconds;
	// zero selects the paper defaults (60s / 30s).
	WindowLength sim.Time `json:"window_length,omitempty"`
	WindowHop    sim.Time `json:"window_hop,omitempty"`
	// Preset names the metric set (metrics.PresetNames); it must match the
	// model's metric names. Empty selects "raw-all". Presets rather than
	// arbitrary sets because extractor functions are not serializable.
	Preset string `json:"preset,omitempty"`
	// Window, HystK, HystN, Alpha, FDR, MinSamples, Workers and Rule map
	// onto the stream option set (WithWindow, WithHysteresis, ...).
	Window     int           `json:"window"`
	HystK      int           `json:"hyst_k,omitempty"`
	HystN      int           `json:"hyst_n,omitempty"`
	Alpha      float64       `json:"alpha,omitempty"`
	FDR        float64       `json:"fdr,omitempty"`
	MinSamples int           `json:"min_samples,omitempty"`
	Workers    int           `json:"workers,omitempty"`
	Rule       core.VoteRule `json:"rule,omitempty"`
	// SketchEps, when positive, switches the tenant's baselines to
	// bounded-memory ECDF sketches (stream.WithSketch) with this error
	// budget. Shards overrides the detector shard count (stream.WithShards);
	// zero keeps the stream default.
	SketchEps float64 `json:"sketch_eps,omitempty"`
	Shards    int     `json:"shards,omitempty"`
	// QueueCap bounds the ingest queue in batches (one POST = one batch);
	// a full queue sheds with 429. SnapshotEvery snapshots after every N
	// processed batches (counted, not timed — the serving path is walltime-
	// free by project invariant). VerdictLog bounds the retained verdict
	// ring. Zeros select the package defaults; SnapshotEvery < 0 disables
	// periodic snapshots (drain still writes a final one).
	QueueCap      int `json:"queue_cap,omitempty"`
	SnapshotEvery int `json:"snapshot_every,omitempty"`
	VerdictLog    int `json:"verdict_log,omitempty"`
}

// withDefaults resolves zero knobs.
func (c TenantConfig) withDefaults() TenantConfig {
	if c.Preset == "" {
		c.Preset = metrics.SetRawAll
	}
	if c.QueueCap == 0 {
		c.QueueCap = DefaultQueueCap
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = DefaultSnapshotEvery
	}
	if c.VerdictLog == 0 {
		c.VerdictLog = DefaultVerdictLog
	}
	return c
}

// streamOptions maps the tenant config onto the stream option set. Window is
// always forwarded (a zero window must be rejected, not defaulted — the
// snapshot contract needs the configured value); the remaining knobs are
// forwarded only when set, so zero values keep the stream defaults and the
// option constructors validate anything out of range.
func (c TenantConfig) streamOptions(set []metrics.Metric) []stream.Option {
	opts := []stream.Option{
		stream.WithMetricSet(set),
		stream.WithGeometry(c.WindowLength, c.WindowHop),
		stream.WithWindow(c.Window),
	}
	if c.HystK != 0 || c.HystN != 0 {
		opts = append(opts, stream.WithHysteresis(c.HystK, c.HystN))
	}
	if c.Alpha != 0 {
		opts = append(opts, stream.WithAlpha(c.Alpha))
	}
	if c.FDR != 0 {
		opts = append(opts, stream.WithFDR(c.FDR))
	}
	if c.MinSamples != 0 {
		opts = append(opts, stream.WithMinSamples(c.MinSamples))
	}
	if c.Workers != 0 {
		opts = append(opts, stream.WithWorkers(c.Workers))
	}
	if c.Rule != 0 {
		opts = append(opts, stream.WithVoteRule(c.Rule))
	}
	if c.SketchEps != 0 {
		opts = append(opts, stream.WithSketch(c.SketchEps))
	}
	if c.Shards != 0 {
		opts = append(opts, stream.WithShards(c.Shards))
	}
	return opts
}

// SeqVerdict is one verdict on a tenant's retained timeline, stamped with its
// monotone sequence number. Sequence numbers restart consistently after a
// crash: the counter rewinds with the pipeline state, so a replayed hop gets
// the same number the lost original had.
type SeqVerdict struct {
	Seq     uint64          `json:"seq"`
	Verdict *stream.Verdict `json:"verdict"`
}

// TenantStats is one tenant's serving accounting.
type TenantStats struct {
	Tenant   string               `json:"tenant"`
	Pipeline stream.PipelineStats `json:"pipeline"`
	// QueueCap/QueueLen describe the ingest queue; Shed counts batches
	// rejected with 429 over the tenant's lifetime (restarts included).
	QueueCap  int    `json:"queue_cap"`
	QueueLen  int    `json:"queue_len"`
	Shed      uint64 `json:"shed"`
	Processed uint64 `json:"processed"`
	// Seq is the newest verdict sequence number (0 before the first hop).
	Seq uint64 `json:"seq"`
	// Draining and Failed describe lifecycle state; Failed carries the
	// terminal pipeline error when the tenant has one.
	Draining bool   `json:"draining,omitempty"`
	Failed   string `json:"failed,omitempty"`
}

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrQueueFull is backpressure: the caller should back off and retry.
	ErrQueueFull = errors.New("serve: ingest queue full")
	// ErrDraining rejects work arriving after shutdown began.
	ErrDraining = errors.New("serve: tenant draining")
)

// job is one unit of tenant work: an ingest batch, a barrier, or both (a
// barrier with snapshot set forces a snapshot at its queue position).
type job struct {
	ticks []map[string][]telemetry.Sample
	// barrier, when non-nil, receives the job's outcome; quiesce and
	// forced-snapshot callers block on it to get an ordered flush point.
	barrier  chan error
	snapshot bool
	// gate, when non-nil, parks the consumer until the channel is closed.
	// Test-only: the backpressure suite uses it to hold a queue full at a
	// deterministic point.
	gate chan struct{}
}

// tenant is one hosted pipeline: a bounded queue in front of a single
// consumer goroutine that owns the pipeline, plus the shared bookkeeping the
// HTTP handlers read. The queue channel is never closed — shutdown is
// signalled through the stop channel — so a blocked barrier enqueue can never
// hit a closed-channel panic; it is fenced by done instead.
type tenant struct {
	name  string
	cfg   TenantConfig
	model *core.Model
	set   []metrics.Metric
	store *Store

	queue chan job
	stop  chan struct{} // closed once: begin shutdown
	done  chan struct{} // closed by the consumer on exit

	mu        sync.Mutex
	pipe      *stream.Pipeline // owned by the consumer; guarded for stats/export
	closed    bool             // no further enqueues
	killed    bool             // crash simulation: skip the final snapshot
	failed    error            // terminal pipeline error
	shed      uint64
	processed uint64
	seq       uint64
	verdicts  []SeqVerdict  // ring of the last cfg.VerdictLog verdicts
	notify    chan struct{} // closed and replaced when verdicts arrive
	stats     stream.PipelineStats
}

// newTenant builds a tenant and, when snap is non-nil, restores the pipeline
// and counters from it. The caller starts the consumer with go t.run().
func newTenant(name string, cfg TenantConfig, model *core.Model, store *Store, snap *TenantSnapshot) (*tenant, error) {
	if err := ValidTenantName(name); err != nil {
		return nil, err
	}
	if model == nil {
		return nil, fmt.Errorf("serve: tenant %q: nil model", name)
	}
	cfg = cfg.withDefaults()
	if cfg.QueueCap < 1 {
		return nil, fmt.Errorf("serve: tenant %q: queue capacity %d < 1", name, cfg.QueueCap)
	}
	if cfg.VerdictLog < 1 {
		return nil, fmt.Errorf("serve: tenant %q: verdict log %d < 1", name, cfg.VerdictLog)
	}
	set, err := metrics.Preset(cfg.Preset)
	if err != nil {
		return nil, fmt.Errorf("serve: tenant %q: %w", name, err)
	}
	pipe, err := stream.NewPipeline(model, cfg.streamOptions(set)...)
	if err != nil {
		return nil, fmt.Errorf("serve: tenant %q: %w", name, err)
	}
	t := &tenant{
		name: name, cfg: cfg, model: model, set: set, store: store,
		queue:  make(chan job, cfg.QueueCap),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		pipe:   pipe,
		notify: make(chan struct{}),
	}
	if snap != nil {
		if snap.State != nil {
			if err := pipe.RestoreState(snap.State); err != nil {
				return nil, fmt.Errorf("serve: tenant %q: %w", name, err)
			}
		}
		t.seq = snap.Seq
		t.processed = snap.Processed
		t.shed = snap.Shed
		t.stats = pipe.Stats()
	}
	return t, nil
}

// enqueueBatch hands an ingest batch to the consumer without blocking: a full
// queue is the backpressure signal, not a stall.
func (t *tenant) enqueueBatch(ticks []map[string][]telemetry.Sample) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.failed != nil {
		return fmt.Errorf("serve: tenant %q failed: %w", t.name, t.failed)
	}
	if t.closed {
		return ErrDraining
	}
	select {
	case t.queue <- job{ticks: ticks}:
		return nil
	default:
		t.shed++
		return ErrQueueFull
	}
}

// barrier enqueues a barrier job (blocking — barriers are control-plane, not
// load) and waits for the consumer to reach it. With snapshot set the
// consumer writes a snapshot at the barrier's queue position. Returns the
// consumer's outcome, or an error if the tenant shut down or ctx expired
// first.
func (t *tenant) barrier(ctx context.Context, snapshot bool) error {
	t.mu.Lock()
	if t.failed != nil {
		err := t.failed
		t.mu.Unlock()
		return fmt.Errorf("serve: tenant %q failed: %w", t.name, err)
	}
	if t.closed {
		t.mu.Unlock()
		return ErrDraining
	}
	t.mu.Unlock()

	j := job{barrier: make(chan error, 1), snapshot: snapshot}
	select {
	case t.queue <- j:
	case <-t.done:
		return ErrDraining
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case err := <-j.barrier:
		return err
	case <-t.done:
		// The consumer exited with the barrier still queued (shutdown won
		// the race); report the outcome it would have given.
		select {
		case err := <-j.barrier:
			return err
		default:
			return ErrDraining
		}
	case <-ctx.Done():
		return ctx.Err()
	}
}

// beginShutdown flips the tenant into its terminal mode; the first caller
// wins. With kill set the consumer abandons queued work and skips the final
// snapshot, simulating a crash.
func (t *tenant) beginShutdown(kill bool) {
	t.mu.Lock()
	already := t.closed
	t.closed = true
	if kill {
		t.killed = true
	}
	t.mu.Unlock()
	if !already {
		close(t.stop)
	}
}

// run is the consumer: it owns the pipeline, processes jobs in FIFO order,
// and on shutdown drains the residual queue (graceful) or abandons it
// (killed), then writes the final snapshot unless killed or failed.
func (t *tenant) run() {
	defer close(t.done)
	for {
		select {
		case j := <-t.queue:
			t.process(j)
		case <-t.stop:
			// closed is already set, so the residual queue is finite:
			// sample enqueues are refused, and the only sends still in
			// flight are barriers, which are fenced by done.
			for {
				select {
				case j := <-t.queue:
					if t.isKilled() {
						t.reply(j, ErrDraining)
						continue
					}
					t.process(j)
				default:
					t.mu.Lock()
					skip := t.killed || t.failed != nil
					t.mu.Unlock()
					if !skip {
						t.snapshotNow()
					}
					return
				}
			}
		}
	}
}

func (t *tenant) isKilled() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.killed
}

// reply answers a barrier if the job carries one.
func (t *tenant) reply(j job, err error) {
	if j.barrier != nil {
		j.barrier <- err
	}
}

// process runs one job through the pipeline and updates the shared
// bookkeeping. A pipeline error is terminal: the tenant stops accepting work
// and its (possibly inconsistent) state is never snapshotted — the on-disk
// snapshot keeps the last good state.
func (t *tenant) process(j job) {
	if j.gate != nil {
		<-j.gate
	}
	if t.failedErr() != nil {
		t.reply(j, t.failedErr())
		return
	}
	var emitted []SeqVerdict
	for _, tick := range j.ticks {
		vs, err := t.pipe.Tick(context.Background(), tick)
		if err != nil {
			t.mu.Lock()
			t.failed = err
			t.closed = true
			t.mu.Unlock()
			t.reply(j, err)
			return
		}
		for _, v := range vs {
			emitted = append(emitted, SeqVerdict{Verdict: v})
		}
	}

	t.mu.Lock()
	if len(j.ticks) > 0 {
		t.processed++
	}
	for i := range emitted {
		t.seq++
		emitted[i].Seq = t.seq
	}
	t.verdicts = append(t.verdicts, emitted...)
	if over := len(t.verdicts) - t.cfg.VerdictLog; over > 0 {
		t.verdicts = append(t.verdicts[:0], t.verdicts[over:]...)
	}
	t.stats = t.pipe.Stats()
	processed := t.processed
	if len(emitted) > 0 {
		close(t.notify)
		t.notify = make(chan struct{})
	}
	t.mu.Unlock()

	var err error
	if j.snapshot || (len(j.ticks) > 0 && t.cfg.SnapshotEvery > 0 && processed%uint64(t.cfg.SnapshotEvery) == 0) {
		err = t.snapshotNow()
	}
	t.reply(j, err)
}

func (t *tenant) failedErr() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.failed
}

// snapshotNow exports the pipeline state and persists it atomically. Called
// only from the consumer goroutine, which owns the pipeline; the lock is held
// just long enough to capture a counter-consistent view.
func (t *tenant) snapshotNow() error {
	t.mu.Lock()
	ts := &TenantSnapshot{
		Version:   SnapshotVersion,
		Tenant:    t.name,
		Config:    t.cfg,
		Model:     t.model,
		State:     t.pipe.ExportState(),
		Seq:       t.seq,
		Processed: t.processed,
		Shed:      t.shed,
	}
	t.mu.Unlock()
	return t.store.Save(ts)
}

// verdictsSince returns retained verdicts with sequence numbers in
// (since, since+max], the newest retained sequence number, and whether the
// requested range was truncated (since predates the ring).
func (t *tenant) verdictsSince(since uint64, max int) (vs []SeqVerdict, newest uint64, truncated bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	newest = t.seq
	if len(t.verdicts) > 0 && since+1 < t.verdicts[0].Seq {
		truncated = true
	} else if len(t.verdicts) == 0 && since < t.seq {
		truncated = true
	}
	for _, sv := range t.verdicts {
		if sv.Seq <= since {
			continue
		}
		vs = append(vs, sv)
		if max > 0 && len(vs) >= max {
			break
		}
	}
	return vs, newest, truncated
}

// waitCh returns the channel closed on the next verdict arrival, for
// long-polling. The caller must also select on its request context: the
// serving path is walltime-free, so the poll deadline is the client's.
func (t *tenant) waitCh() <-chan struct{} {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.notify
}

// snapshotStats returns the tenant's serving accounting.
func (t *tenant) snapshotStats() TenantStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := TenantStats{
		Tenant:    t.name,
		Pipeline:  t.stats,
		QueueCap:  t.cfg.QueueCap,
		QueueLen:  len(t.queue),
		Shed:      t.shed,
		Processed: t.processed,
		Seq:       t.seq,
		Draining:  t.closed,
	}
	if t.failed != nil {
		st.Failed = t.failed.Error()
	}
	return st
}

// validateTicks rejects hostile ingest shapes before they reach the queue:
// unknown services, out-of-range stamps, negative spans.
func (t *tenant) validateTicks(ticks []map[string][]telemetry.Sample) error {
	known := make(map[string]bool, len(t.model.Services))
	for _, svc := range t.model.Services {
		known[svc] = true
	}
	for _, tick := range ticks {
		for svc, samples := range tick {
			if !known[svc] {
				return fmt.Errorf("serve: unknown service %q (model has %v)", svc, t.model.Services)
			}
			for _, smp := range samples {
				if smp.At < 0 || smp.At >= maxSampleStamp {
					return fmt.Errorf("serve: sample stamp %v for %q out of range", smp.At, svc)
				}
				if smp.Span < 0 {
					return fmt.Errorf("serve: negative sample span %d for %q", smp.Span, svc)
				}
			}
		}
	}
	return nil
}
