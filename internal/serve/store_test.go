package serve

import (
	"context"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestStoreRoundTrip(t *testing.T) {
	fx := buildFixture(t)
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := &TenantSnapshot{
		Version: SnapshotVersion,
		Tenant:  "prod",
		Config:  tenantCfg(2, 0).withDefaults(),
		Model:   fx.model,
		Seq:     7,
	}
	if err := store.Save(ts); err != nil {
		t.Fatal(err)
	}
	// Overwrites are atomic replacements, not appends.
	ts.Seq = 9
	if err := store.Save(ts); err != nil {
		t.Fatal(err)
	}
	got, err := store.Load("prod")
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 9 || got.Tenant != "prod" || got.Config.Workers != 2 {
		t.Fatalf("loaded snapshot %+v", got)
	}

	names, err := store.List()
	if err != nil || len(names) != 1 || names[0] != "prod" {
		t.Fatalf("list: %v %v", names, err)
	}
	if err := store.Delete("prod"); err != nil {
		t.Fatal(err)
	}
	if err := store.Delete("prod"); err != nil {
		t.Fatal("deleting an absent snapshot must be a no-op, got", err)
	}
	if names, _ := store.List(); len(names) != 0 {
		t.Fatalf("list after delete: %v", names)
	}
}

func TestStoreRejectsHostileInput(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"", ".hidden", "a/b", strings.Repeat("x", 65), "père"} {
		if _, err := store.Load(name); err == nil {
			t.Fatalf("Load(%q) accepted an invalid tenant name", name)
		}
	}
	// A truncated snapshot is a loud load error, never a silent fresh start.
	path := filepath.Join(dir, "broken"+snapshotSuffix)
	if err := os.WriteFile(path, []byte(`{"version":1,"tenant":"bro`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Load("broken"); err == nil {
		t.Fatal("corrupt snapshot loaded without error")
	}
	// A snapshot filed under the wrong tenant name is rejected too.
	good := filepath.Join(dir, "alias"+snapshotSuffix)
	if err := os.WriteFile(good, []byte(`{"version":1,"tenant":"other"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Load("alias"); err == nil {
		t.Fatal("mismatched tenant field loaded without error")
	}
	// Stray files without the snapshot suffix are invisible to List.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	names, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if n == "notes.txt" || n == "notes" {
			t.Fatalf("stray file leaked into List: %v", names)
		}
	}
}

// TestBootFailsOnCorruptSnapshot pins the fail-loud contract: a server must
// refuse to boot over a store holding an undecodable snapshot rather than
// silently discarding a tenant's state.
func TestBootFailsOnCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prod"+snapshotSuffix)
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewServer(Options{Store: store}); err == nil {
		t.Fatal("server booted over a corrupt snapshot")
	}
}

// TestDrainRebootContinuity is the graceful counterpart of the chaos suite:
// a drained server writes final snapshots even with periodic snapshots
// disabled, so a reboot resumes with zero loss and the full timeline intact.
func TestDrainRebootContinuity(t *testing.T) {
	fx := buildFixture(t)
	cfg := tenantCfg(2, 0)
	cfg.SnapshotEvery = -1 // only the drain-time snapshot stands between runs
	want := mustJSON(t, fx.wantTimeline(t, cfg))
	wire := wireTicks(fx.ticks)
	const splitAt = 31

	dir := t.TempDir()
	srvA, cA, hsA := newTestServer(t, dir)
	if code := cA.create("prod", cfg, fx.model); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if code := cA.ingest("prod", wire[:splitAt]); code != http.StatusAccepted {
		t.Fatalf("ingest: status %d", code)
	}
	if err := srvA.Quiesce(context.Background(), "prod"); err != nil {
		t.Fatal(err)
	}
	head := cA.verdicts("prod", 0)
	if err := srvA.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	hsA.Close()

	srvB, cB, _ := newTestServer(t, dir)
	if code := cB.ingest("prod", wire[splitAt:]); code != http.StatusAccepted {
		t.Fatalf("resumed ingest: status %d", code)
	}
	if err := srvB.Quiesce(context.Background(), "prod"); err != nil {
		t.Fatal(err)
	}
	tail := cB.verdicts("prod", head.Next)
	var stitched []*verdictJSON
	for _, sv := range append(head.Verdicts, tail.Verdicts...) {
		stitched = append(stitched, &verdictJSON{sv.Seq, mustJSON(t, sv.Verdict)})
	}
	if got := stitchTimeline(t, stitched); string(got) != string(want) {
		t.Fatalf("drain/reboot timeline diverges:\n%s\nvs\n%s", got, want)
	}
	if err := srvB.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}
