package serve

import (
	"bytes"
	"context"
	"net/http"
	"testing"
)

// TestCrashRecoveryConformance is the self-chaos harness: feed a tenant over
// HTTP, kill the server mid-stream (no final snapshot — exactly what power
// loss leaves), boot a fresh server from the same store, finish the stream,
// and require the stitched verdict timeline to be byte-identical to an
// uninterrupted run — across worker counts 1..8 and both family-decision
// modes (fixed alpha and BH/FDR).
func TestCrashRecoveryConformance(t *testing.T) {
	fx := buildFixture(t)
	const killAt = 27 // mid-stream, one tick after the fault begins

	for workers := 1; workers <= 8; workers++ {
		for _, mode := range []struct {
			name string
			fdr  float64
		}{{"alpha", 0}, {"fdr", 0.1}} {
			mode := mode
			workers := workers
			t.Run(mode.name+"-w"+string(rune('0'+workers)), func(t *testing.T) {
				t.Parallel()
				cfg := tenantCfg(workers, mode.fdr)
				// Snapshot after every batch: the crash loses nothing, so
				// recovery needs no replay. The replay path is covered by
				// TestCrashRecoveryWithReplay.
				cfg.SnapshotEvery = 1
				want := mustJSON(t, fx.wantTimeline(t, cfg))
				wire := wireTicks(fx.ticks)

				dir := t.TempDir()
				srvA, cA, hsA := newTestServer(t, dir)
				if code := cA.create("prod", cfg, fx.model); code != http.StatusCreated {
					t.Fatalf("create: status %d", code)
				}
				for i := 0; i < killAt; i++ {
					if code := cA.ingest("prod", wire[i:i+1]); code != http.StatusAccepted {
						t.Fatalf("ingest %d: status %d", i, code)
					}
				}
				if err := srvA.Quiesce(context.Background(), "prod"); err != nil {
					t.Fatal(err)
				}
				head := cA.verdicts("prod", 0)
				srvA.Kill()
				hsA.Close()

				// Boot from the same store: restore is the default path.
				srvB, cB, _ := newTestServer(t, dir)
				st := srvB.Stats()
				if len(st.Tenants) != 1 || st.Tenants[0].Tenant != "prod" {
					t.Fatalf("restored tenants: %+v", st.Tenants)
				}
				if st.Tenants[0].Seq != head.Next {
					t.Fatalf("restored seq %d, pre-crash seq %d", st.Tenants[0].Seq, head.Next)
				}
				for i := killAt; i < len(wire); i++ {
					if code := cB.ingest("prod", wire[i:i+1]); code != http.StatusAccepted {
						t.Fatalf("resumed ingest %d: status %d", i, code)
					}
				}
				if err := srvB.Quiesce(context.Background(), "prod"); err != nil {
					t.Fatal(err)
				}
				tail := cB.verdicts("prod", head.Next)

				var stitched []*verdictJSON
				for _, sv := range append(head.Verdicts, tail.Verdicts...) {
					stitched = append(stitched, &verdictJSON{sv.Seq, mustJSON(t, sv.Verdict)})
				}
				got := stitchTimeline(t, stitched)
				if !bytes.Equal(got, want) {
					t.Fatalf("stitched timeline diverges from uninterrupted run:\n%s\nvs\n%s", got, want)
				}
				if err := srvB.Drain(context.Background()); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// verdictJSON carries one verdict's sequence and serialized form.
type verdictJSON struct {
	seq  uint64
	blob []byte
}

// stitchTimeline re-assembles verdict blobs into a JSON array, checking the
// sequence numbers are exactly 1..n — a crash must not skip or duplicate.
func stitchTimeline(t testing.TB, vs []*verdictJSON) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteByte('[')
	for i, v := range vs {
		if v.seq != uint64(i+1) {
			t.Fatalf("verdict %d carries seq %d", i, v.seq)
		}
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.Write(v.blob)
	}
	buf.WriteByte(']')
	return buf.Bytes()
}

// TestCrashRecoveryWithReplay crashes between snapshots: the tenant
// snapshots every 5 batches, is killed at a non-multiple, and the producer
// replays from before the crash point (at-least-once delivery). The
// replayed stamps are dropped by the out-of-order guard, re-processed hops
// re-emit with their original sequence numbers, and the stitched timeline
// still matches the uninterrupted run byte for byte.
func TestCrashRecoveryWithReplay(t *testing.T) {
	fx := buildFixture(t)
	cfg := tenantCfg(4, 0)
	cfg.SnapshotEvery = 5
	const killAt = 27 // snapshots cover batches 1..25; batches 26..27 are lost
	want := mustJSON(t, fx.wantTimeline(t, cfg))
	wire := wireTicks(fx.ticks)

	dir := t.TempDir()
	srvA, cA, hsA := newTestServer(t, dir)
	if code := cA.create("prod", cfg, fx.model); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	for i := 0; i < killAt; i++ {
		if code := cA.ingest("prod", wire[i:i+1]); code != http.StatusAccepted {
			t.Fatalf("ingest %d: status %d", i, code)
		}
	}
	if err := srvA.Quiesce(context.Background(), "prod"); err != nil {
		t.Fatal(err)
	}
	// The consumer fetched everything before the crash; after it, the log
	// rewinds with the state, so re-reads of the replayed range must agree.
	head := cA.verdicts("prod", 0)
	srvA.Kill()
	hsA.Close()

	srvB, cB, _ := newTestServer(t, dir)
	restored := srvB.Stats().Tenants[0]
	if restored.Seq >= head.Next {
		t.Fatalf("restored seq %d did not rewind below pre-crash %d", restored.Seq, head.Next)
	}
	// At-least-once replay: the producer rewinds past the last snapshot
	// (which covered batches 1..25, wire[0..24]) and resends from wire[23] —
	// two batches of overlap with state the snapshot already holds.
	for i := 23; i < len(wire); i++ {
		if code := cB.ingest("prod", wire[i:i+1]); code != http.StatusAccepted {
			t.Fatalf("replayed ingest %d: status %d", i, code)
		}
	}
	if err := srvB.Quiesce(context.Background(), "prod"); err != nil {
		t.Fatal(err)
	}
	tail := cB.verdicts("prod", restored.Seq)

	// Replayed hops must re-emit the same verdicts the crash lost: check
	// the overlap region agrees with the pre-crash read before stitching.
	var stitched []*verdictJSON
	for _, sv := range head.Verdicts {
		if sv.Seq <= restored.Seq {
			stitched = append(stitched, &verdictJSON{sv.Seq, mustJSON(t, sv.Verdict)})
		}
	}
	for _, sv := range tail.Verdicts {
		if sv.Seq <= head.Next {
			lost := head.Verdicts[sv.Seq-1]
			if !bytes.Equal(mustJSON(t, sv.Verdict), mustJSON(t, lost.Verdict)) {
				t.Fatalf("replayed verdict %d differs from the original", sv.Seq)
			}
		}
		stitched = append(stitched, &verdictJSON{sv.Seq, mustJSON(t, sv.Verdict)})
	}
	got := stitchTimeline(t, stitched)
	if !bytes.Equal(got, want) {
		t.Fatalf("replayed timeline diverges from uninterrupted run:\n%s\nvs\n%s", got, want)
	}

	// The replay must be visible in the accounting, not silent.
	final := srvB.Stats().Tenants[0]
	if final.Pipeline.Aggregator.OutOfOrder == 0 {
		t.Fatal("replayed samples left no out-of-order accounting")
	}
	if err := srvB.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}
