package serve

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"testing"
)

// pauseTenant parks a tenant's consumer on a gate job and waits until the
// queue has drained into the parked consumer, so the queue's full capacity is
// available and every subsequent enqueue outcome is deterministic. Returns
// the release function.
func pauseTenant(t *testing.T, tn *tenant) func() {
	t.Helper()
	gate := make(chan struct{})
	select {
	case tn.queue <- job{gate: gate}:
	default:
		t.Fatal("queue full before the pause job")
	}
	for len(tn.queue) > 0 {
		runtime.Gosched()
	}
	return func() { close(gate) }
}

// TestBackpressureSheds pins the bounded-queue contract: with the consumer
// parked, exactly QueueCap batches are accepted, every further POST is shed
// with 429 + Retry-After and exact accounting, and an independent tenant on
// the same server keeps its full throughput. Releasing the consumer processes
// precisely the accepted batches — shed work is dropped, never deferred.
func TestBackpressureSheds(t *testing.T) {
	fx := buildFixture(t)
	srv, c, hs := newTestServer(t, t.TempDir())
	cfgA := tenantCfg(1, 0)
	cfgA.QueueCap = 4
	if code := c.create("slow", cfgA, fx.model); code != http.StatusCreated {
		t.Fatalf("create slow: status %d", code)
	}
	cfgB := tenantCfg(2, 0)
	if code := c.create("brisk", cfgB, fx.model); code != http.StatusCreated {
		t.Fatalf("create brisk: status %d", code)
	}
	wire := wireTicks(fx.ticks)

	srv.mu.RLock()
	slow := srv.tenants["slow"]
	srv.mu.RUnlock()
	release := pauseTenant(t, slow)

	// The first QueueCap batches queue up; everything after sheds.
	const floods = 10
	var accepted, shed int
	for i := 0; i < floods; i++ {
		blob := mustJSON(t, ingestRequest{Ticks: wire[i : i+1]})
		resp, err := hs.Client().Post(hs.URL+"/v1/tenants/slow/ingest", "application/json", bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests:
			shed++
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without a Retry-After header")
			}
		default:
			t.Fatalf("flood %d: status %d", i, resp.StatusCode)
		}
	}
	if accepted != cfgA.QueueCap || shed != floods-cfgA.QueueCap {
		t.Fatalf("accepted %d shed %d, want %d/%d", accepted, shed, cfgA.QueueCap, floods-cfgA.QueueCap)
	}

	// The stalled tenant must not slow its neighbour: brisk runs its whole
	// timeline while slow is still parked.
	for i := range wire {
		if code := c.ingest("brisk", wire[i:i+1]); code != http.StatusAccepted {
			t.Fatalf("brisk ingest %d: status %d", i, code)
		}
	}
	if err := srv.Quiesce(context.Background(), "brisk"); err != nil {
		t.Fatal(err)
	}
	want := fx.wantTimeline(t, cfgB)
	got := c.verdicts("brisk", 0)
	if len(got.Verdicts) != len(want) {
		t.Fatalf("brisk served %d verdicts behind a stalled neighbour, want %d", len(got.Verdicts), len(want))
	}

	var st TenantStats
	if code := c.do(http.MethodGet, "/v1/tenants/slow/stats", nil, &st); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if st.Shed != uint64(shed) || st.QueueLen != cfgA.QueueCap || st.Processed != 0 {
		t.Fatalf("parked stats shed=%d queue=%d processed=%d, want %d/%d/0", st.Shed, st.QueueLen, st.Processed, shed, cfgA.QueueCap)
	}

	release()
	if err := srv.Quiesce(context.Background(), "slow"); err != nil {
		t.Fatal(err)
	}
	if code := c.do(http.MethodGet, "/v1/tenants/slow/stats", nil, &st); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if st.Processed != uint64(cfgA.QueueCap) || st.Shed != uint64(shed) {
		t.Fatalf("released stats processed=%d shed=%d, want %d/%d", st.Processed, st.Shed, cfgA.QueueCap, shed)
	}
}

// TestConcurrentServing drives several tenants from concurrent producers
// while stats and verdict readers hammer the same server; run under -race
// (make test-serve) this is the data-race conformance check. Each tenant's
// timeline must still match the bare pipeline exactly.
func TestConcurrentServing(t *testing.T) {
	fx := buildFixture(t)
	srv, c, _ := newTestServer(t, t.TempDir())
	wire := wireTicks(fx.ticks)
	cfg := tenantCfg(4, 0.1)

	const tenants = 4
	names := make([]string, tenants)
	for i := range names {
		names[i] = fmt.Sprintf("t%d", i)
		if code := c.create(names[i], cfg, fx.model); code != http.StatusCreated {
			t.Fatalf("create %s: status %d", names[i], code)
		}
	}

	stopReaders := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 3; i++ {
		readers.Add(1)
		go func(n int) {
			defer readers.Done()
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				name := names[n%tenants]
				var st TenantStats
				c.do(http.MethodGet, "/v1/tenants/"+name+"/stats", nil, &st)
				c.verdicts(name, 0)
				srv.Stats()
				n++
			}
		}(i)
	}

	var writers sync.WaitGroup
	for _, name := range names {
		writers.Add(1)
		go func(name string) {
			defer writers.Done()
			for i := range wire {
				// Producers retry on backpressure: the default queue is
				// deep enough that this converges quickly.
				for c.ingest(name, wire[i:i+1]) == http.StatusTooManyRequests {
					runtime.Gosched()
				}
			}
		}(name)
	}
	writers.Wait()
	close(stopReaders)
	readers.Wait()

	want := mustJSON(t, fx.wantTimeline(t, cfg))
	for _, name := range names {
		if err := srv.Quiesce(context.Background(), name); err != nil {
			t.Fatal(err)
		}
		resp := c.verdicts(name, 0)
		var stitched []*verdictJSON
		for _, sv := range resp.Verdicts {
			stitched = append(stitched, &verdictJSON{sv.Seq, mustJSON(t, sv.Verdict)})
		}
		if got := stitchTimeline(t, stitched); !bytes.Equal(got, want) {
			t.Fatalf("tenant %s timeline diverged under concurrency", name)
		}
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}
