// Package serve hosts independent per-tenant stream.Pipelines behind a
// long-running HTTP/JSON API (`causalfl serve`), engineered robustness-first:
// bounded ingest queues with explicit backpressure, crash-safe periodic
// snapshots with restore-on-boot, graceful signal-aware drain, and a
// first-class crash-simulation hook (Kill) so the chaos suite can test the
// recovery path the same way production exercises it.
//
// The crash-recovery guarantee rests on two properties. First, snapshots are
// atomic (write-temp, fsync, rename): a crash mid-write leaves the previous
// snapshot intact, never a torn one. Second, re-ingesting samples the tenant
// had already processed is harmless: the aggregator drops replayed stamps by
// design, so an at-least-once producer replaying from its own cursor after a
// crash converges on the exact verdict timeline an uninterrupted run would
// have produced — byte for byte, which the conformance suite asserts.
package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"causalfl/internal/core"
	"causalfl/internal/stream"
)

// SnapshotVersion versions the tenant snapshot envelope (the pipeline state
// inside carries its own stream.SnapshotVersion).
const SnapshotVersion = 1

// TenantSnapshot is the on-disk unit of crash safety: everything needed to
// rebuild a tenant exactly — its configuration, its trained model, the
// pipeline's dynamic state, and the serving counters (verdict sequence,
// processed batches, shed count) that must stay consistent with it.
type TenantSnapshot struct {
	Version int          `json:"version"`
	Tenant  string       `json:"tenant"`
	Config  TenantConfig `json:"config"`
	Model   *core.Model  `json:"model"`
	// State is the pipeline's dynamic state; nil for a tenant snapshotted
	// before its first ingest.
	State *stream.PipelineState `json:"state,omitempty"`
	// Seq is the verdict sequence counter at snapshot time. It rewinds in
	// lockstep with State, so verdicts replayed after a crash carry the same
	// sequence numbers as the ones the crash lost.
	Seq uint64 `json:"seq"`
	// Processed counts ingested batches; Shed counts batches rejected with
	// backpressure. Both are carried across restarts for honest accounting.
	Processed uint64 `json:"processed"`
	Shed      uint64 `json:"shed"`
}

// validate checks the envelope before a restore.
func (ts *TenantSnapshot) validate() error {
	if ts.Version != SnapshotVersion {
		return fmt.Errorf("serve: snapshot version %d, this build reads %d", ts.Version, SnapshotVersion)
	}
	if err := ValidTenantName(ts.Tenant); err != nil {
		return err
	}
	if ts.Model == nil {
		return fmt.Errorf("serve: snapshot for %q has no model", ts.Tenant)
	}
	if err := ts.Model.Validate(); err != nil {
		return fmt.Errorf("serve: snapshot for %q: %w", ts.Tenant, err)
	}
	if ts.State != nil {
		if err := ts.State.Validate(); err != nil {
			return fmt.Errorf("serve: snapshot for %q: %w", ts.Tenant, err)
		}
	}
	return nil
}

// ValidTenantName rejects names that could escape the store directory or
// garble a URL: 1-64 characters drawn from letters, digits, dot, underscore
// and dash, not starting with a dot.
func ValidTenantName(name string) error {
	if name == "" || len(name) > 64 {
		return fmt.Errorf("serve: tenant name must be 1-64 characters, got %d", len(name))
	}
	if name[0] == '.' {
		return fmt.Errorf("serve: tenant name %q may not start with a dot", name)
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '_', r == '-':
		default:
			return fmt.Errorf("serve: tenant name %q contains %q; allowed are letters, digits, '.', '_', '-'", name, r)
		}
	}
	return nil
}

const snapshotSuffix = ".snapshot.json"

// Store persists tenant snapshots, one file per tenant, with atomic
// replacement: a crash at any instant leaves either the old snapshot or the
// new one on disk, never a prefix.
type Store struct {
	dir string
}

// NewStore opens (creating if needed) a snapshot directory.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("serve: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: create store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(tenant string) string {
	return filepath.Join(s.dir, tenant+snapshotSuffix)
}

// Save atomically replaces the tenant's snapshot: marshal, write to a
// temporary file in the same directory, fsync it, rename over the target,
// fsync the directory so the rename itself is durable.
func (s *Store) Save(ts *TenantSnapshot) error {
	if err := ts.validate(); err != nil {
		return err
	}
	blob, err := json.MarshalIndent(ts, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: encode snapshot for %q: %w", ts.Tenant, err)
	}
	blob = append(blob, '\n')

	final := s.path(ts.Tenant)
	tmp, err := os.CreateTemp(s.dir, ts.Tenant+".tmp-*")
	if err != nil {
		return fmt.Errorf("serve: snapshot %q: %w", ts.Tenant, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(blob); err != nil {
		_ = tmp.Close() // the write error is the one worth reporting
		return fmt.Errorf("serve: snapshot %q: %w", ts.Tenant, err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close() // the sync error is the one worth reporting
		return fmt.Errorf("serve: snapshot %q: %w", ts.Tenant, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serve: snapshot %q: %w", ts.Tenant, err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return fmt.Errorf("serve: snapshot %q: %w", ts.Tenant, err)
	}
	return syncDir(s.dir)
}

// Load reads and validates one tenant's snapshot. A missing snapshot is an
// os.ErrNotExist-wrapped error; a corrupt one is an explicit failure — boot
// must not silently start that tenant from scratch and quietly lose its
// baselines.
func (s *Store) Load(tenant string) (*TenantSnapshot, error) {
	if err := ValidTenantName(tenant); err != nil {
		return nil, err
	}
	blob, err := os.ReadFile(s.path(tenant))
	if err != nil {
		return nil, fmt.Errorf("serve: load snapshot %q: %w", tenant, err)
	}
	var ts TenantSnapshot
	if err := json.Unmarshal(blob, &ts); err != nil {
		return nil, fmt.Errorf("serve: snapshot %q corrupt: %w", tenant, err)
	}
	if err := ts.validate(); err != nil {
		return nil, err
	}
	if ts.Tenant != tenant {
		return nil, fmt.Errorf("serve: snapshot file for %q names tenant %q", tenant, ts.Tenant)
	}
	return &ts, nil
}

// List returns the tenants with a snapshot on disk, sorted.
func (s *Store) List() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("serve: list store: %w", err)
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, snapshotSuffix) {
			continue
		}
		out = append(out, strings.TrimSuffix(name, snapshotSuffix))
	}
	sort.Strings(out)
	return out, nil
}

// Delete removes a tenant's snapshot (absent is fine) and syncs the
// directory.
func (s *Store) Delete(tenant string) error {
	if err := ValidTenantName(tenant); err != nil {
		return err
	}
	if err := os.Remove(s.path(tenant)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("serve: delete snapshot %q: %w", tenant, err)
	}
	return syncDir(s.dir)
}

// syncDir fsyncs a directory so a just-renamed or just-removed entry survives
// power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("serve: sync store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("serve: sync store: %w", err)
	}
	return nil
}
