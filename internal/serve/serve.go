package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"causalfl/internal/core"
	"causalfl/internal/stream"
	"causalfl/internal/telemetry"
)

// ErrExists rejects creating a tenant that already exists.
var ErrExists = errors.New("serve: tenant already exists")

// maxBodyBytes caps request bodies; a batch of telemetry ticks for a few
// hundred services fits comfortably, a hostile multi-gigabyte body does not.
const maxBodyBytes = 8 << 20

// Options configures a Server.
type Options struct {
	// Store persists tenant snapshots; required.
	Store *Store
	// Defaults overlays zero fields of every tenant's config (its own zero
	// fields fall back to the package defaults).
	Defaults TenantConfig
}

// Server hosts independent per-tenant pipelines behind the HTTP API
// documented in docs/SERVING.md. One consumer goroutine per tenant owns that
// tenant's pipeline; handlers only touch queues and locked bookkeeping, so a
// slow or flooding tenant cannot delay another tenant's verdicts.
type Server struct {
	opts Options
	mux  *http.ServeMux

	mu       sync.RWMutex
	tenants  map[string]*tenant
	draining bool
}

// NewServer builds a server and restores every tenant found in the store —
// crash recovery is the default boot path, not a special mode. A corrupt
// snapshot fails the boot explicitly: silently starting that tenant fresh
// would discard its baselines behind the operator's back.
func NewServer(opts Options) (*Server, error) {
	if opts.Store == nil {
		return nil, fmt.Errorf("serve: nil store")
	}
	s := &Server{opts: opts, tenants: make(map[string]*tenant)}
	names, err := opts.Store.List()
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		snap, err := opts.Store.Load(name)
		if err != nil {
			return nil, fmt.Errorf("serve: restore on boot: %w", err)
		}
		t, err := newTenant(name, snap.Config, snap.Model, opts.Store, snap)
		if err != nil {
			return nil, fmt.Errorf("serve: restore on boot: %w", err)
		}
		s.tenants[name] = t
		//vet:allow unbounded-spawn -- one long-lived worker per restored tenant, bounded by the store's tenant count
		go t.run()
	}
	s.routes()
	return s, nil
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// routes wires the API. Method-qualified patterns give wrong-method requests
// an automatic 405 with an Allow header.
func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/tenants", s.handleListTenants)
	s.mux.HandleFunc("PUT /v1/tenants/{tenant}", s.handleCreateTenant)
	s.mux.HandleFunc("GET /v1/tenants/{tenant}", s.handleGetTenant)
	s.mux.HandleFunc("DELETE /v1/tenants/{tenant}", s.handleDeleteTenant)
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/ingest", s.handleIngest)
	s.mux.HandleFunc("GET /v1/tenants/{tenant}/verdicts", s.handleVerdicts)
	s.mux.HandleFunc("GET /v1/tenants/{tenant}/stats", s.handleTenantStats)
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/snapshot", s.handleSnapshot)
}

// jsonError writes a JSON error body with an explicit content type.
func jsonError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// A failed write means the client is gone; there is no one to tell.
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeJSON writes a 200/201/202 JSON body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// A failed write means the client is gone; there is no one to tell.
	_ = json.NewEncoder(w).Encode(v)
}

// tenantFor resolves the path's tenant or writes a 404.
func (s *Server) tenantFor(w http.ResponseWriter, r *http.Request) *tenant {
	name := r.PathValue("tenant")
	s.mu.RLock()
	t := s.tenants[name]
	s.mu.RUnlock()
	if t == nil {
		jsonError(w, http.StatusNotFound, "no tenant %q", name)
		return nil
	}
	return t
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	draining := s.draining
	n := len(s.tenants)
	s.mu.RUnlock()
	if draining {
		jsonError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "tenants": n})
}

// ServerStats is the fleet-wide accounting the /v1/stats endpoint returns.
type ServerStats struct {
	Tenants []TenantStats `json:"tenants"`
	// Shed and Processed are totals across tenants.
	Shed      uint64 `json:"shed"`
	Processed uint64 `json:"processed"`
	Draining  bool   `json:"draining,omitempty"`
}

// Stats returns the fleet-wide accounting.
func (s *Server) Stats() ServerStats {
	s.mu.RLock()
	ts := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		ts = append(ts, t)
	}
	draining := s.draining
	s.mu.RUnlock()

	out := ServerStats{Tenants: make([]TenantStats, 0, len(ts)), Draining: draining}
	for _, t := range ts {
		st := t.snapshotStats()
		out.Shed += st.Shed
		out.Processed += st.Processed
		out.Tenants = append(out.Tenants, st)
	}
	sort.Slice(out.Tenants, func(i, j int) bool { return out.Tenants[i].Tenant < out.Tenants[j].Tenant })
	return out
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleListTenants(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	names := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		names = append(names, name)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	writeJSON(w, http.StatusOK, map[string]any{"tenants": names})
}

// createTenantRequest is the PUT body: the tenant's config plus its trained
// model (the causalfl-train output, core.Model JSON).
type createTenantRequest struct {
	Config TenantConfig `json:"config"`
	Model  *core.Model  `json:"model"`
}

// overlay fills zero serving fields from the server-wide defaults.
func overlay(cfg, def TenantConfig) TenantConfig {
	if cfg.WindowLength == 0 {
		cfg.WindowLength = def.WindowLength
	}
	if cfg.WindowHop == 0 {
		cfg.WindowHop = def.WindowHop
	}
	if cfg.Preset == "" {
		cfg.Preset = def.Preset
	}
	if cfg.Window == 0 {
		cfg.Window = def.Window
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = def.QueueCap
	}
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = def.SnapshotEvery
	}
	if cfg.VerdictLog == 0 {
		cfg.VerdictLog = def.VerdictLog
	}
	return cfg
}

// CreateTenant registers a tenant programmatically (the PUT handler in
// library form) and writes its initial snapshot so the tenant survives a
// crash that happens before its first periodic snapshot.
func (s *Server) CreateTenant(ctx context.Context, name string, cfg TenantConfig, model *core.Model) error {
	if model == nil {
		return fmt.Errorf("serve: tenant %q: nil model", name)
	}
	if err := model.Validate(); err != nil {
		return fmt.Errorf("serve: tenant %q: %w", name, err)
	}
	cfg = overlay(cfg, s.opts.Defaults)
	t, err := newTenant(name, cfg, model, s.opts.Store, nil)
	if err != nil {
		return err
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return ErrDraining
	}
	if _, ok := s.tenants[name]; ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrExists, name)
	}
	s.tenants[name] = t
	s.mu.Unlock()

	go t.run()
	// The initial snapshot makes creation itself crash-safe. Going through
	// the barrier keeps every Save on the consumer goroutine.
	if err := t.barrier(ctx, true); err != nil {
		return fmt.Errorf("serve: tenant %q: initial snapshot: %w", name, err)
	}
	return nil
}

func (s *Server) handleCreateTenant(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	if err := ValidTenantName(name); err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var req createTenantRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		jsonError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	if req.Model == nil {
		jsonError(w, http.StatusBadRequest, "request has no model")
		return
	}
	if err := s.CreateTenant(r.Context(), name, req.Config, req.Model); err != nil {
		code := http.StatusBadRequest
		switch {
		case errors.Is(err, ErrDraining):
			code = http.StatusServiceUnavailable
		case errors.Is(err, ErrExists):
			code = http.StatusConflict
		}
		jsonError(w, code, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"tenant": name})
}

func (s *Server) handleGetTenant(w http.ResponseWriter, r *http.Request) {
	t := s.tenantFor(w, r)
	if t == nil {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"tenant": t.name, "config": t.cfg, "stats": t.snapshotStats()})
}

// DeleteTenant drains a tenant and removes it with its snapshot.
func (s *Server) DeleteTenant(name string) error {
	s.mu.Lock()
	t := s.tenants[name]
	delete(s.tenants, name)
	s.mu.Unlock()
	if t == nil {
		return fmt.Errorf("serve: no tenant %q", name)
	}
	t.beginShutdown(true) // deletion discards state; no final snapshot
	<-t.done
	return s.opts.Store.Delete(name)
}

func (s *Server) handleDeleteTenant(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	if err := s.DeleteTenant(name); err != nil {
		jsonError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"deleted": name})
}

// ingestRequest is the POST body: a batch of ticks, each mapping service to
// samples in stream wire form (non-finite counter values spelled "NaN",
// "+Inf", "-Inf").
type ingestRequest struct {
	Ticks []map[string][]stream.SampleState `json:"ticks"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	t := s.tenantFor(w, r)
	if t == nil {
		return
	}
	var req ingestRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		jsonError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	if len(req.Ticks) == 0 {
		jsonError(w, http.StatusBadRequest, "empty batch")
		return
	}
	ticks := make([]map[string][]telemetry.Sample, len(req.Ticks))
	for i, wire := range req.Ticks {
		tick := make(map[string][]telemetry.Sample, len(wire))
		for svc, ss := range wire {
			samples := make([]telemetry.Sample, len(ss))
			for j, one := range ss {
				samples[j] = one.Sample()
			}
			tick[svc] = samples
		}
		ticks[i] = tick
	}
	if err := t.validateTicks(ticks); err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := t.enqueueBatch(ticks); err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			jsonError(w, http.StatusTooManyRequests, "%v", err)
		case errors.Is(err, ErrDraining):
			jsonError(w, http.StatusServiceUnavailable, "%v", err)
		default:
			jsonError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"accepted": len(ticks)})
}

// verdictsResponse is the GET /verdicts body.
type verdictsResponse struct {
	Verdicts []SeqVerdict `json:"verdicts"`
	// Next is the newest sequence number the tenant has emitted; pass it
	// back as ?since= to continue the timeline.
	Next uint64 `json:"next"`
	// Truncated reports that the requested range predates the retained ring
	// (the consumer fell too far behind or the server restarted); the gap
	// is recoverable by replaying samples, not by re-reading the log.
	Truncated bool `json:"truncated,omitempty"`
}

func (s *Server) handleVerdicts(w http.ResponseWriter, r *http.Request) {
	t := s.tenantFor(w, r)
	if t == nil {
		return
	}
	q := r.URL.Query()
	since, err := parseUint(q.Get("since"))
	if err != nil {
		jsonError(w, http.StatusBadRequest, "bad since: %v", err)
		return
	}
	max, err := parseUint(q.Get("max"))
	if err != nil {
		jsonError(w, http.StatusBadRequest, "bad max: %v", err)
		return
	}

	vs, newest, truncated := t.verdictsSince(since, int(max))
	if len(vs) == 0 && q.Get("wait") != "" {
		// Long-poll: block until the next verdict or the client gives up.
		// The wait is bounded by the request context only — this package
		// never arms a timer (project walltime invariant); clients set
		// their own deadline.
		ch := t.waitCh()
		select {
		case <-ch:
			vs, newest, truncated = t.verdictsSince(since, int(max))
		case <-t.done:
		case <-r.Context().Done():
		}
	}
	if vs == nil {
		vs = []SeqVerdict{}
	}
	writeJSON(w, http.StatusOK, verdictsResponse{Verdicts: vs, Next: newest, Truncated: truncated})
}

// parseUint parses a decimal query parameter, empty meaning zero.
func parseUint(s string) (uint64, error) {
	if s == "" {
		return 0, nil
	}
	var v uint64
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, fmt.Errorf("%q is not a non-negative integer", s)
		}
		d := uint64(r - '0')
		if v > (^uint64(0)-d)/10 {
			return 0, fmt.Errorf("%q overflows", s)
		}
		v = v*10 + d
	}
	return v, nil
}

func (s *Server) handleTenantStats(w http.ResponseWriter, r *http.Request) {
	t := s.tenantFor(w, r)
	if t == nil {
		return
	}
	writeJSON(w, http.StatusOK, t.snapshotStats())
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	t := s.tenantFor(w, r)
	if t == nil {
		return
	}
	if err := t.barrier(r.Context(), true); err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, ErrDraining) {
			code = http.StatusServiceUnavailable
		}
		jsonError(w, code, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"snapshotted": t.name})
}
