// Package chaos is the fault-injection platform of the reproduction. It
// mirrors the role of the paper's injection platform [34]: applying and
// removing faults on running services without touching application code.
//
// The paper's evaluation uses a single fault type, http-service-unavailable,
// implemented on Kubernetes by pointing the service at a dead port; here it
// flips the target into fail-fast refusal mode. Latency, error-rate and
// process-pause faults are provided as extensions for ablation studies.
package chaos

import (
	"fmt"
	"time"

	"causalfl/internal/sim"
)

// FaultType enumerates supported injections.
type FaultType int

const (
	// ServiceUnavailable makes every call to the target fail fast without
	// reaching it (the paper's fault model, §II-B).
	ServiceUnavailable FaultType = iota + 1
	// Latency adds a fixed delay to every handler execution.
	Latency
	// ErrorRate makes a fraction of handled requests fail.
	ErrorRate
	// Pause suspends the target's background pollers.
	Pause
)

// String returns the fault type name.
func (f FaultType) String() string {
	switch f {
	case ServiceUnavailable:
		return "http-service-unavailable"
	case Latency:
		return "latency"
	case ErrorRate:
		return "error-rate"
	case Pause:
		return "pause"
	default:
		return "unknown"
	}
}

// Fault describes one injection.
type Fault struct {
	Type FaultType
	// Delay is the added latency for Latency faults.
	Delay time.Duration
	// Rate is the failure probability for ErrorRate faults.
	Rate float64
}

// Unavailable is the paper's fault.
func Unavailable() Fault { return Fault{Type: ServiceUnavailable} }

// Injector applies and clears faults on a cluster, tracking what is active.
type Injector struct {
	cluster *sim.Cluster
	active  map[string]Fault
}

// NewInjector creates an injector for cluster.
func NewInjector(cluster *sim.Cluster) (*Injector, error) {
	if cluster == nil {
		return nil, fmt.Errorf("chaos: nil cluster")
	}
	return &Injector{cluster: cluster, active: make(map[string]Fault)}, nil
}

// Inject applies f to the named service. One fault per service at a time,
// matching the paper's one-fault-at-a-time protocol.
func (i *Injector) Inject(target string, f Fault) error {
	svc, ok := i.cluster.Service(target)
	if !ok {
		return fmt.Errorf("chaos: inject: %w", &sim.UnknownServiceError{Name: target})
	}
	if prev, busy := i.active[target]; busy {
		return fmt.Errorf("chaos: %s already has an active %s fault", target, prev.Type)
	}
	switch f.Type {
	case ServiceUnavailable:
		svc.SetUnavailable(true)
	case Latency:
		if f.Delay <= 0 {
			return fmt.Errorf("chaos: latency fault needs a positive delay, got %v", f.Delay)
		}
		svc.SetExtraLatency(f.Delay)
	case ErrorRate:
		if f.Rate <= 0 || f.Rate > 1 {
			return fmt.Errorf("chaos: error-rate fault needs a rate in (0,1], got %v", f.Rate)
		}
		svc.SetErrorRate(f.Rate)
	case Pause:
		svc.SetPaused(true)
	default:
		return fmt.Errorf("chaos: unknown fault type %d", f.Type)
	}
	i.active[target] = f
	return nil
}

// Clear removes the active fault from target.
func (i *Injector) Clear(target string) error {
	svc, ok := i.cluster.Service(target)
	if !ok {
		return fmt.Errorf("chaos: clear: %w", &sim.UnknownServiceError{Name: target})
	}
	f, busy := i.active[target]
	if !busy {
		return fmt.Errorf("chaos: %s has no active fault", target)
	}
	switch f.Type {
	case ServiceUnavailable:
		svc.SetUnavailable(false)
	case Latency:
		svc.SetExtraLatency(0)
	case ErrorRate:
		svc.SetErrorRate(0)
	case Pause:
		svc.SetPaused(false)
	}
	delete(i.active, target)
	return nil
}

// ClearAll removes every active fault.
func (i *Injector) ClearAll() error {
	for target := range i.active {
		if err := i.Clear(target); err != nil {
			return err
		}
	}
	return nil
}

// Active returns the services with an active fault.
func (i *Injector) Active() map[string]Fault {
	out := make(map[string]Fault, len(i.active))
	for k, v := range i.active {
		out[k] = v
	}
	return out
}

// ScheduleWindow arranges for f to be active on target during
// [start, start+duration) of virtual time. Errors inside the scheduled
// callbacks are reported through onErr (which may be nil to ignore them).
func (i *Injector) ScheduleWindow(target string, f Fault, start sim.Time, duration time.Duration, onErr func(error)) error {
	if duration <= 0 {
		return fmt.Errorf("chaos: schedule window needs positive duration, got %v", duration)
	}
	if _, ok := i.cluster.Service(target); !ok {
		return fmt.Errorf("chaos: schedule: %w", &sim.UnknownServiceError{Name: target})
	}
	report := onErr
	if report == nil {
		report = func(error) {}
	}
	eng := i.cluster.Engine()
	eng.Schedule(start, func() {
		if err := i.Inject(target, f); err != nil {
			report(err)
		}
	})
	eng.Schedule(start+duration, func() {
		if err := i.Clear(target); err != nil {
			report(err)
		}
	})
	return nil
}
