// Package chaos is the fault-injection platform of the reproduction. It
// mirrors the role of the paper's injection platform [34]: applying and
// removing faults on running services without touching application code.
//
// The paper's evaluation uses a single fault type, http-service-unavailable,
// implemented on Kubernetes by pointing the service at a dead port; here it
// flips the target into fail-fast refusal mode. Latency, error-rate and
// process-pause faults are provided as extensions for ablation studies, and
// scrape-loss / sample-corruption faults degrade the observability plane
// itself (the telemetry-robustness experiments inject those).
package chaos

import (
	"fmt"
	"sort"
	"time"

	"causalfl/internal/sim"
)

// FaultType enumerates supported injections.
type FaultType int

const (
	// ServiceUnavailable makes every call to the target fail fast without
	// reaching it (the paper's fault model, §II-B).
	ServiceUnavailable FaultType = iota + 1
	// Latency adds a fixed delay to every handler execution.
	Latency
	// ErrorRate makes a fraction of handled requests fail.
	ErrorRate
	// Pause suspends the target's background pollers.
	Pause
	// ScrapeLoss is a telemetry-plane fault: the fraction Rate of sampler
	// scrapes of the target return nothing, as if the exporter timed out or
	// the collection pipeline dropped the datapoints. The service itself is
	// untouched.
	ScrapeLoss
	// SampleCorruption is a telemetry-plane fault: the fraction Rate of
	// scrapes of the target yield mangled readings (NaN/Inf/spike values),
	// modelling exporter bugs and transport corruption.
	SampleCorruption
)

// String returns the fault type name.
func (f FaultType) String() string {
	switch f {
	case ServiceUnavailable:
		return "http-service-unavailable"
	case Latency:
		return "latency"
	case ErrorRate:
		return "error-rate"
	case Pause:
		return "pause"
	case ScrapeLoss:
		return "scrape-loss"
	case SampleCorruption:
		return "sample-corruption"
	default:
		return "unknown"
	}
}

// Telemetry reports whether the fault acts on the observability plane
// (degrading what monitoring sees) rather than on the service itself.
// Telemetry faults coexist with service faults on the same target: degraded
// monitoring of a broken service is exactly the scenario the
// graceful-degradation pipeline must survive.
func (f FaultType) Telemetry() bool {
	return f == ScrapeLoss || f == SampleCorruption
}

// Fault describes one injection.
type Fault struct {
	Type FaultType
	// Delay is the added latency for Latency faults.
	Delay time.Duration
	// Rate is the probability parameter of ErrorRate, ScrapeLoss and
	// SampleCorruption faults.
	Rate float64
}

// Validate checks the fault's parameters against its type. It is consulted
// by Inject and ScheduleWindow so malformed faults fail loudly at injection
// time instead of silently doing nothing (or something else) later.
func (f Fault) Validate() error {
	if f.Type == 0 {
		return fmt.Errorf("chaos: fault has zero-valued type (forgot to set Fault.Type?)")
	}
	if f.Delay < 0 {
		return fmt.Errorf("chaos: %s fault has negative delay %v", f.Type, f.Delay)
	}
	if f.Rate < 0 || f.Rate > 1 {
		return fmt.Errorf("chaos: %s fault rate %v outside [0,1]", f.Type, f.Rate)
	}
	switch f.Type {
	case ServiceUnavailable, Pause:
		return nil
	case Latency:
		if f.Delay == 0 {
			return fmt.Errorf("chaos: latency fault needs a positive delay")
		}
		return nil
	case ErrorRate, ScrapeLoss, SampleCorruption:
		if f.Rate == 0 {
			return fmt.Errorf("chaos: %s fault needs a rate in (0,1]", f.Type)
		}
		return nil
	default:
		return fmt.Errorf("chaos: unknown fault type %d", f.Type)
	}
}

// Unavailable is the paper's fault.
func Unavailable() Fault { return Fault{Type: ServiceUnavailable} }

// Undo reverses f's effect on svc — the intervention ⇄ fault inverse
// mapping. It is what "restore service s" means as a repair intervention:
// given the fault that was injected, put the service back to its healthy
// configuration. Undoing a fault that is not active is a no-op (the healthy
// configuration is idempotent), which is exactly what makes restore a safe
// candidate on services that were never faulted.
func Undo(svc *sim.Service, f Fault) {
	switch f.Type {
	case ServiceUnavailable:
		svc.SetUnavailable(false)
	case Latency:
		svc.SetExtraLatency(0)
	case ErrorRate:
		svc.SetErrorRate(0)
	case Pause:
		svc.SetPaused(false)
	case ScrapeLoss:
		svc.SetScrapeLossRate(0)
	case SampleCorruption:
		svc.SetSampleCorruptionRate(0)
	}
}

// TargetFault pairs a fault with the service it is (or should be) applied
// to — the unit of fault ledgers and repair scenarios.
type TargetFault struct {
	Target string
	Fault  Fault
}

// Injector applies and clears faults on a cluster, tracking what is active.
// Service-plane and telemetry-plane faults are booked separately: each plane
// holds at most one fault per service, but a telemetry fault may ride on top
// of a service fault (degraded monitoring of a broken service).
type Injector struct {
	cluster   *sim.Cluster
	active    map[string]Fault
	telemetry map[string]Fault
}

// NewInjector creates an injector for cluster.
func NewInjector(cluster *sim.Cluster) (*Injector, error) {
	if cluster == nil {
		return nil, fmt.Errorf("chaos: nil cluster")
	}
	return &Injector{
		cluster:   cluster,
		active:    make(map[string]Fault),
		telemetry: make(map[string]Fault),
	}, nil
}

// book returns the fault ledger of f's plane.
func (i *Injector) book(f Fault) map[string]Fault {
	if f.Type.Telemetry() {
		return i.telemetry
	}
	return i.active
}

// Inject applies f to the named service. One fault per service per plane at
// a time, matching the paper's one-fault-at-a-time protocol.
func (i *Injector) Inject(target string, f Fault) error {
	svc, ok := i.cluster.Service(target)
	if !ok {
		return fmt.Errorf("chaos: inject: %w", &sim.UnknownServiceError{Name: target})
	}
	if err := f.Validate(); err != nil {
		return fmt.Errorf("chaos: inject %s: %w", target, err)
	}
	book := i.book(f)
	if prev, busy := book[target]; busy {
		return fmt.Errorf("chaos: %s already has an active %s fault", target, prev.Type)
	}
	switch f.Type {
	case ServiceUnavailable:
		svc.SetUnavailable(true)
	case Latency:
		svc.SetExtraLatency(f.Delay)
	case ErrorRate:
		svc.SetErrorRate(f.Rate)
	case Pause:
		svc.SetPaused(true)
	case ScrapeLoss:
		svc.SetScrapeLossRate(f.Rate)
	case SampleCorruption:
		svc.SetSampleCorruptionRate(f.Rate)
	}
	book[target] = f
	return nil
}

// Clear removes the target's service-plane fault; when only a
// telemetry-plane fault is active, it removes that instead. The asymmetry is
// deliberate: clearing an injected service fault at a phase boundary must not
// also lift a long-lived telemetry degradation riding on the same target
// (use ClearTelemetry for that).
func (i *Injector) Clear(target string) error {
	svc, ok := i.cluster.Service(target)
	if !ok {
		return fmt.Errorf("chaos: clear: %w", &sim.UnknownServiceError{Name: target})
	}
	if f, busy := i.active[target]; busy {
		Undo(svc, f)
		delete(i.active, target)
		return nil
	}
	if _, busy := i.telemetry[target]; busy {
		return i.ClearTelemetry(target)
	}
	return fmt.Errorf("chaos: %s has no active fault", target)
}

// ClearTelemetry removes the target's telemetry-plane fault.
func (i *Injector) ClearTelemetry(target string) error {
	svc, ok := i.cluster.Service(target)
	if !ok {
		return fmt.Errorf("chaos: clear: %w", &sim.UnknownServiceError{Name: target})
	}
	f, busy := i.telemetry[target]
	if !busy {
		return fmt.Errorf("chaos: %s has no active telemetry fault", target)
	}
	Undo(svc, f)
	delete(i.telemetry, target)
	return nil
}

// ClearAll removes every active fault on both planes.
func (i *Injector) ClearAll() error {
	for target := range i.active {
		if err := i.Clear(target); err != nil {
			return err
		}
	}
	for target := range i.telemetry {
		if err := i.ClearTelemetry(target); err != nil {
			return err
		}
	}
	return nil
}

// Active returns the services with an active service-plane fault.
func (i *Injector) Active() map[string]Fault {
	out := make(map[string]Fault, len(i.active))
	for k, v := range i.active {
		out[k] = v
	}
	return out
}

// ActiveTelemetry returns the services with an active telemetry-plane fault.
func (i *Injector) ActiveTelemetry() map[string]Fault {
	out := make(map[string]Fault, len(i.telemetry))
	for k, v := range i.telemetry {
		out[k] = v
	}
	return out
}

// sortedSnapshot flattens a fault ledger into a slice ordered by target name.
func sortedSnapshot(book map[string]Fault) []TargetFault {
	out := make([]TargetFault, 0, len(book))
	for target, f := range book {
		out = append(out, TargetFault{Target: target, Fault: f})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Target < out[b].Target })
	return out
}

// ActiveSorted returns the active service-plane faults ordered by target
// name. Unlike Active(), whose map invites nondeterministic range order,
// this is safe to iterate in code that must be reproducible (candidate
// generation, reports).
func (i *Injector) ActiveSorted() []TargetFault { return sortedSnapshot(i.active) }

// ActiveTelemetrySorted returns the active telemetry-plane faults ordered by
// target name.
func (i *Injector) ActiveTelemetrySorted() []TargetFault { return sortedSnapshot(i.telemetry) }

// ScheduleWindow arranges for f to be active on target during
// [start, start+duration) of virtual time. Errors inside the scheduled
// callbacks are reported through onErr (which may be nil to ignore them).
func (i *Injector) ScheduleWindow(target string, f Fault, start sim.Time, duration time.Duration, onErr func(error)) error {
	if duration <= 0 {
		return fmt.Errorf("chaos: schedule window needs positive duration, got %v", duration)
	}
	if err := f.Validate(); err != nil {
		return fmt.Errorf("chaos: schedule %s: %w", target, err)
	}
	if _, ok := i.cluster.Service(target); !ok {
		return fmt.Errorf("chaos: schedule: %w", &sim.UnknownServiceError{Name: target})
	}
	report := onErr
	if report == nil {
		report = func(error) {}
	}
	eng := i.cluster.Engine()
	eng.Schedule(start, func() {
		if err := i.Inject(target, f); err != nil {
			report(err)
		}
	})
	eng.Schedule(start+duration, func() {
		if err := i.Clear(target); err != nil {
			report(err)
		}
	})
	return nil
}
