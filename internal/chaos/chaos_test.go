package chaos

import (
	"errors"
	"testing"
	"time"

	"causalfl/internal/sim"
)

func newCluster(t *testing.T) (*sim.Engine, *sim.Cluster, *Injector) {
	t.Helper()
	eng := sim.NewEngine(4)
	cluster := sim.NewCluster(eng)
	cluster.MustAddService(sim.ServiceConfig{Name: "svc", Endpoints: []sim.Endpoint{{Name: "ep"}}})
	inj, err := NewInjector(cluster)
	if err != nil {
		t.Fatal(err)
	}
	return eng, cluster, inj
}

func TestInjectAndClearUnavailable(t *testing.T) {
	eng, cluster, inj := newCluster(t)
	if err := inj.Inject("svc", Unavailable()); err != nil {
		t.Fatal(err)
	}
	var failedErr error
	cluster.Call("client", "svc", "ep", func(r sim.Result) { failedErr = r.Err })
	eng.Run(time.Second)
	if !errors.Is(failedErr, sim.ErrServiceUnavailable) {
		t.Fatalf("call during fault returned %v", failedErr)
	}
	if len(inj.Active()) != 1 {
		t.Fatalf("Active = %v", inj.Active())
	}
	if err := inj.Clear("svc"); err != nil {
		t.Fatal(err)
	}
	var okErr error = errors.New("sentinel")
	cluster.Call("client", "svc", "ep", func(r sim.Result) { okErr = r.Err })
	eng.Run(2 * time.Second)
	if okErr != nil {
		t.Fatalf("call after clear returned %v", okErr)
	}
}

func TestDoubleInjectRejected(t *testing.T) {
	_, _, inj := newCluster(t)
	if err := inj.Inject("svc", Unavailable()); err != nil {
		t.Fatal(err)
	}
	if err := inj.Inject("svc", Fault{Type: Latency, Delay: time.Second}); err == nil {
		t.Fatal("second fault on same service accepted")
	}
}

func TestClearWithoutFault(t *testing.T) {
	_, _, inj := newCluster(t)
	if err := inj.Clear("svc"); err == nil {
		t.Fatal("Clear on healthy service accepted")
	}
}

func TestUnknownTarget(t *testing.T) {
	_, _, inj := newCluster(t)
	var use *sim.UnknownServiceError
	if err := inj.Inject("ghost", Unavailable()); !errors.As(err, &use) {
		t.Fatalf("Inject ghost: %v", err)
	}
	if err := inj.Clear("ghost"); !errors.As(err, &use) {
		t.Fatalf("Clear ghost: %v", err)
	}
}

func TestFaultValidation(t *testing.T) {
	_, _, inj := newCluster(t)
	cases := []Fault{
		{Type: Latency},              // missing delay
		{Type: ErrorRate},            // missing rate
		{Type: ErrorRate, Rate: 1.5}, // rate out of range
		{Type: FaultType(99)},        // unknown type
	}
	for i, f := range cases {
		if err := inj.Inject("svc", f); err == nil {
			t.Errorf("case %d: fault %+v accepted", i, f)
			_ = inj.Clear("svc")
		}
	}
}

func TestLatencyAndErrorRateFaults(t *testing.T) {
	eng, cluster, inj := newCluster(t)
	if err := inj.Inject("svc", Fault{Type: Latency, Delay: 100 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	start := eng.Now()
	var doneAt sim.Time
	cluster.Call("client", "svc", "ep", func(sim.Result) { doneAt = eng.Now() })
	eng.Run(time.Second)
	if doneAt-start < 100*time.Millisecond {
		t.Fatalf("latency fault not applied: %v", doneAt-start)
	}
	if err := inj.Clear("svc"); err != nil {
		t.Fatal(err)
	}

	if err := inj.Inject("svc", Fault{Type: ErrorRate, Rate: 1}); err != nil {
		t.Fatal(err)
	}
	var gotErr error
	cluster.Call("client", "svc", "ep", func(r sim.Result) { gotErr = r.Err })
	eng.Run(2 * time.Second)
	if !errors.Is(gotErr, sim.ErrInjectedFault) {
		t.Fatalf("error-rate fault returned %v", gotErr)
	}
}

func TestClearAll(t *testing.T) {
	_, cluster, inj := newCluster(t)
	cluster.MustAddService(sim.ServiceConfig{Name: "other"})
	if err := inj.Inject("svc", Unavailable()); err != nil {
		t.Fatal(err)
	}
	if err := inj.Inject("other", Unavailable()); err != nil {
		t.Fatal(err)
	}
	if err := inj.ClearAll(); err != nil {
		t.Fatal(err)
	}
	if len(inj.Active()) != 0 {
		t.Fatalf("Active after ClearAll = %v", inj.Active())
	}
}

func TestScheduleWindow(t *testing.T) {
	eng, cluster, inj := newCluster(t)
	var schedErr error
	err := inj.ScheduleWindow("svc", Unavailable(), 2*time.Second, 3*time.Second, func(e error) { schedErr = e })
	if err != nil {
		t.Fatal(err)
	}
	results := make(map[sim.Time]error)
	probe := func(at sim.Time) {
		eng.Schedule(at, func() {
			cluster.Call("client", "svc", "ep", func(r sim.Result) { results[at] = r.Err })
		})
	}
	probe(1 * time.Second) // before the window
	probe(3 * time.Second) // inside
	probe(6 * time.Second) // after
	eng.Run(10 * time.Second)
	if schedErr != nil {
		t.Fatal(schedErr)
	}
	if results[1*time.Second] != nil {
		t.Error("call before window failed")
	}
	if results[3*time.Second] == nil {
		t.Error("call inside window succeeded")
	}
	if results[6*time.Second] != nil {
		t.Error("call after window failed")
	}
}

func TestScheduleWindowValidation(t *testing.T) {
	_, _, inj := newCluster(t)
	if err := inj.ScheduleWindow("svc", Unavailable(), 0, 0, nil); err == nil {
		t.Error("zero duration accepted")
	}
	if err := inj.ScheduleWindow("ghost", Unavailable(), 0, time.Second, nil); err == nil {
		t.Error("unknown target accepted")
	}
}

func TestNewInjectorNilCluster(t *testing.T) {
	if _, err := NewInjector(nil); err == nil {
		t.Fatal("nil cluster accepted")
	}
}

func TestFaultTypeStrings(t *testing.T) {
	names := map[FaultType]string{
		ServiceUnavailable: "http-service-unavailable",
		Latency:            "latency",
		ErrorRate:          "error-rate",
		Pause:              "pause",
		FaultType(42):      "unknown",
	}
	for ft, want := range names {
		if got := ft.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", ft, got, want)
		}
	}
}

func TestFaultValidateDirectly(t *testing.T) {
	bad := []Fault{
		{},                                    // zero type
		{Type: ServiceUnavailable, Delay: -1}, // negative delay
		{Type: Latency, Delay: -time.Second},  // negative delay
		{Type: ErrorRate, Rate: -0.1},         // negative rate
		{Type: ScrapeLoss},                    // missing rate
		{Type: ScrapeLoss, Rate: 1.5},         // rate out of range
		{Type: SampleCorruption, Rate: -1},    // rate out of range
		{Type: FaultType(99), Rate: 0.5},      // unknown type
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("case %d: fault %+v validated", i, f)
		}
	}
	good := []Fault{
		Unavailable(),
		{Type: Latency, Delay: time.Millisecond},
		{Type: ErrorRate, Rate: 0.5},
		{Type: Pause},
		{Type: ScrapeLoss, Rate: 0.2},
		{Type: SampleCorruption, Rate: 1},
	}
	for i, f := range good {
		if err := f.Validate(); err != nil {
			t.Errorf("case %d: fault %+v rejected: %v", i, f, err)
		}
	}
}

func TestTelemetryFaultCoexistsWithServiceFault(t *testing.T) {
	_, cluster, inj := newCluster(t)
	if err := inj.Inject("svc", Fault{Type: ScrapeLoss, Rate: 0.3}); err != nil {
		t.Fatal(err)
	}
	// A service-plane fault rides on the same target without conflict.
	if err := inj.Inject("svc", Unavailable()); err != nil {
		t.Fatalf("service fault under telemetry fault rejected: %v", err)
	}
	// But a second telemetry fault is one-per-plane.
	if err := inj.Inject("svc", Fault{Type: SampleCorruption, Rate: 0.1}); err == nil {
		t.Fatal("second telemetry fault on same service accepted")
	}
	if len(inj.Active()) != 1 || len(inj.ActiveTelemetry()) != 1 {
		t.Fatalf("Active=%v ActiveTelemetry=%v", inj.Active(), inj.ActiveTelemetry())
	}
	// Clear removes the service-plane fault first, leaving the telemetry
	// degradation in place (a campaign clearing its injected fault must
	// not silently lift a long-lived scrape-loss fault).
	if err := inj.Clear("svc"); err != nil {
		t.Fatal(err)
	}
	if len(inj.Active()) != 0 {
		t.Fatalf("service fault survived Clear: %v", inj.Active())
	}
	if len(inj.ActiveTelemetry()) != 1 {
		t.Fatalf("telemetry fault did not survive Clear: %v", inj.ActiveTelemetry())
	}
	svc, _ := cluster.Service("svc")
	if svc.ScrapeLossRate() == 0 {
		t.Fatal("scrape-loss rate lifted by Clear")
	}
	// With no service fault left, Clear falls back to the telemetry plane.
	if err := inj.Clear("svc"); err != nil {
		t.Fatal(err)
	}
	if len(inj.ActiveTelemetry()) != 0 {
		t.Fatalf("telemetry fault survived second Clear: %v", inj.ActiveTelemetry())
	}
	if svc.ScrapeLossRate() != 0 {
		t.Fatal("scrape-loss rate not reset")
	}
}

func TestClearTelemetry(t *testing.T) {
	_, cluster, inj := newCluster(t)
	if err := inj.ClearTelemetry("svc"); err == nil {
		t.Fatal("ClearTelemetry on healthy service accepted")
	}
	if err := inj.Inject("svc", Fault{Type: SampleCorruption, Rate: 0.5}); err != nil {
		t.Fatal(err)
	}
	svc, _ := cluster.Service("svc")
	if svc.SampleCorruptionRate() != 0.5 {
		t.Fatalf("corruption rate = %v", svc.SampleCorruptionRate())
	}
	if err := inj.ClearTelemetry("svc"); err != nil {
		t.Fatal(err)
	}
	if svc.SampleCorruptionRate() != 0 {
		t.Fatal("corruption rate not reset")
	}
}

func TestClearAllBothPlanes(t *testing.T) {
	_, _, inj := newCluster(t)
	if err := inj.Inject("svc", Unavailable()); err != nil {
		t.Fatal(err)
	}
	if err := inj.Inject("svc", Fault{Type: ScrapeLoss, Rate: 0.1}); err != nil {
		t.Fatal(err)
	}
	if err := inj.ClearAll(); err != nil {
		t.Fatal(err)
	}
	if len(inj.Active()) != 0 || len(inj.ActiveTelemetry()) != 0 {
		t.Fatalf("ClearAll left Active=%v ActiveTelemetry=%v", inj.Active(), inj.ActiveTelemetry())
	}
}

func TestScheduleWindowNilOnErr(t *testing.T) {
	eng, _, inj := newCluster(t)
	// Occupy the service plane for the whole run so the scheduled window's
	// Inject (and its deferred Clear, which finds a different fault than it
	// installed) both fail — with a nil onErr those failures must be
	// swallowed, not panic.
	if err := inj.Inject("svc", Unavailable()); err != nil {
		t.Fatal(err)
	}
	if err := inj.ScheduleWindow("svc", Fault{Type: Latency, Delay: time.Second}, time.Second, 2*time.Second, nil); err != nil {
		t.Fatal(err)
	}
	if err := inj.Clear("svc"); err != nil {
		t.Fatal(err)
	}
	// Now the window's Clear at t=3s fires on a service with no fault at
	// all; it errors into the nil callback.
	eng.Run(5 * time.Second)
}

func TestScheduleWindowRejectsInvalidFault(t *testing.T) {
	_, _, inj := newCluster(t)
	if err := inj.ScheduleWindow("svc", Fault{Type: ErrorRate}, 0, time.Second, nil); err == nil {
		t.Error("invalid fault accepted by ScheduleWindow")
	}
}

func TestTelemetryFaultTypeStrings(t *testing.T) {
	if got := ScrapeLoss.String(); got != "scrape-loss" {
		t.Errorf("ScrapeLoss.String() = %q", got)
	}
	if got := SampleCorruption.String(); got != "sample-corruption" {
		t.Errorf("SampleCorruption.String() = %q", got)
	}
	if !ScrapeLoss.Telemetry() || !SampleCorruption.Telemetry() || ServiceUnavailable.Telemetry() {
		t.Error("Telemetry() plane classification wrong")
	}
}

func TestSortedSnapshotsDeterministic(t *testing.T) {
	eng := sim.NewEngine(5)
	cluster := sim.NewCluster(eng)
	names := []string{"zeta", "alpha", "mid", "beta", "omega"}
	for _, n := range names {
		cluster.MustAddService(sim.ServiceConfig{Name: n, Endpoints: []sim.Endpoint{{Name: "ep"}}})
	}
	inj, err := NewInjector(cluster)
	if err != nil {
		t.Fatal(err)
	}
	// Inject in non-alphabetical order on both planes.
	for _, n := range names {
		if err := inj.Inject(n, Unavailable()); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range []string{"mid", "alpha"} {
		if err := inj.Inject(n, Fault{Type: ScrapeLoss, Rate: 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"alpha", "beta", "mid", "omega", "zeta"}
	for round := 0; round < 10; round++ {
		got := inj.ActiveSorted()
		if len(got) != len(want) {
			t.Fatalf("ActiveSorted() has %d entries, want %d", len(got), len(want))
		}
		for i, tf := range got {
			if tf.Target != want[i] {
				t.Fatalf("ActiveSorted()[%d] = %q, want %q", i, tf.Target, want[i])
			}
			if tf.Fault.Type != ServiceUnavailable {
				t.Fatalf("ActiveSorted()[%d] fault %v, want unavailable", i, tf.Fault.Type)
			}
		}
		tel := inj.ActiveTelemetrySorted()
		if len(tel) != 2 || tel[0].Target != "alpha" || tel[1].Target != "mid" {
			t.Fatalf("ActiveTelemetrySorted() = %v", tel)
		}
	}
}

func TestUndoReversesEveryFaultType(t *testing.T) {
	eng, cluster, inj := newCluster(t)
	svc, _ := cluster.Service("svc")
	faults := []Fault{
		{Type: ServiceUnavailable},
		{Type: Latency, Delay: 100 * time.Millisecond},
		{Type: ErrorRate, Rate: 1},
		{Type: Pause},
		{Type: ScrapeLoss, Rate: 1},
		{Type: SampleCorruption, Rate: 1},
	}
	for _, f := range faults {
		if err := inj.Inject("svc", f); err != nil {
			t.Fatalf("inject %v: %v", f.Type, err)
		}
		Undo(svc, f)
		// The service behaves healthy again: a call must succeed.
		var got error = sim.ErrServiceUnavailable
		cluster.Call("client", "svc", "ep", func(r sim.Result) { got = r.Err })
		end := eng.Now() + sim.Time(time.Second)
		eng.Run(time.Duration(end))
		if got != nil {
			t.Fatalf("call after Undo(%v) failed: %v", f.Type, got)
		}
		// Book-keeping still shows the fault; Clear must drain the ledger
		// without double-undo problems (Undo is idempotent).
		if err := inj.Clear("svc"); err != nil {
			t.Fatalf("clear %v: %v", f.Type, err)
		}
	}
	if len(inj.ActiveSorted()) != 0 || len(inj.ActiveTelemetrySorted()) != 0 {
		t.Fatal("ledgers not empty after clears")
	}
}
